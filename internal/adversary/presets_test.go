package adversary

import (
	"strings"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
)

// These tests pin the preset registry surface (ByName/Presets error paths)
// and the composition invariants every preset must satisfy: schedules
// respect the relative-speed bound, delay policies stay within [1, d]
// before the kernel clamp, crash policies respect the budget f, and
// ObserveSend reaches every component that wants it.

func TestPresetsMatchByName(t *testing.T) {
	cfg := sim.Config{N: 12, F: 3, D: 2, Delta: 2, Seed: 9}
	names := Presets()
	if len(names) == 0 {
		t.Fatal("no presets")
	}
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			t.Fatalf("preset %q listed twice", name)
		}
		seen[name] = true
		if _, err := ByName(name, cfg); err != nil {
			t.Fatalf("listed preset %q rejected: %v", name, err)
		}
	}
	for _, want := range []string{
		PresetBenign, PresetStandard, PresetCrashStorm,
		PresetMaxDelay, PresetStaggered, PresetPartition,
	} {
		if !seen[want] {
			t.Fatalf("preset constant %q missing from Presets()", want)
		}
	}
}

func TestByNameUnknownErrorListsPresets(t *testing.T) {
	cfg := sim.Config{N: 4, F: 0, D: 1, Delta: 1}
	_, err := ByName("chaos-monkey", cfg)
	if err == nil {
		t.Fatal("unknown preset accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "chaos-monkey") {
		t.Fatalf("error does not name the bad preset: %q", msg)
	}
	for _, name := range Presets() {
		if !strings.Contains(msg, name) {
			t.Fatalf("error does not list preset %q: %q", name, msg)
		}
	}
}

// TestPresetCompositionInvariants runs every preset through a real kernel
// execution with the invariant checker riding along: the composed schedule
// must keep every live process within the 2δ−1 step-gap bound, assigned
// delays must land in [1, d], and crashes must stay within f.
func TestPresetCompositionInvariants(t *testing.T) {
	for _, name := range Presets() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := sim.Config{N: 24, F: 6, D: 3, Delta: 3, Seed: 77, MaxSteps: 400}
			adv, err := ByName(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			nodes := make([]sim.Node, cfg.N)
			for i := range nodes {
				nodes[i] = &chattyNode{id: sim.ProcID(i), n: cfg.N, budget: 40}
			}
			w, err := sim.NewWorld(cfg, nodes, adv)
			if err != nil {
				t.Fatal(err)
			}
			chk := sim.NewInvariantChecker(cfg.N, cfg.F, cfg.D, 2*cfg.Delta-1)
			w.SetTracer(chk)
			if _, err := w.Run(nil); err != nil {
				t.Fatal(err)
			}
			if err := chk.Err(); err != nil {
				t.Fatalf("preset %s violated composition invariants: %v", name, err)
			}
			switch name {
			case PresetBenign, PresetPartition:
				if chk.Crashes() != 0 {
					t.Fatalf("crash-free preset crashed %d", chk.Crashes())
				}
			case PresetCrashStorm:
				if chk.Crashes() != cfg.F {
					t.Fatalf("crashstorm crashed %d, want the full budget %d", chk.Crashes(), cfg.F)
				}
			}
		})
	}
}

// chattyNode sends one message per step to a rotating target for a fixed
// budget, keeping the world busy long enough to exercise the policies.
type chattyNode struct {
	id     sim.ProcID
	n      int
	step   int
	budget int
}

func (c *chattyNode) ID() sim.ProcID { return c.id }

func (c *chattyNode) Step(_ sim.Time, _ []sim.Message, out *sim.Outbox) {
	if c.step >= c.budget {
		return
	}
	c.step++
	out.Send(sim.ProcID((int(c.id)+c.step)%c.n), nil)
}

func (c *chattyNode) Quiescent() bool { return c.step >= c.budget }

// TestComposedObserveSendForwarding: Compose forwards send observations to
// every component implementing sim.SendObserver.
func TestComposedObserveSendForwarding(t *testing.T) {
	sched := &observingSchedule{}
	crash := NewCrashOnFirstSend(1)
	adv := Compose(sched, nil, crash)
	m := sim.Message{From: 3, To: 5, SentAt: 2, ReadyAt: 4}
	adv.ObserveSend(m)
	if sched.seen != 1 {
		t.Fatalf("schedule observer saw %d sends, want 1", sched.seen)
	}
	got := adv.Crashes(3, nil, nil)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("adaptive crash policy did not observe the send: %v", got)
	}
}

type observingSchedule struct {
	EveryStep
	seen int
}

func (o *observingSchedule) ObserveSend(sim.Message) { o.seen++ }

func TestSkewedStrideRespectsDelta(t *testing.T) {
	const n, delta = 16, 4
	s := NewSkewedStride(n, delta, 0.5, rng.New(3))
	last := make([]sim.Time, n)
	for p := range last {
		last[p] = -1
	}
	scheduledCount := make([]int, n)
	const horizon = 40 * delta
	for tm := sim.Time(0); tm < horizon; tm++ {
		for _, p := range s.Append(tm, nil, nil) {
			if last[p] >= 0 {
				if gap := tm - last[p]; gap > delta {
					t.Fatalf("process %d starved for %d > δ=%d steps", p, gap, delta)
				}
			}
			last[p] = tm
			scheduledCount[p]++
		}
	}
	// The skew is real: slow processes step exactly horizon/δ times, fast
	// ones every step, and both classes are non-empty at slowFrac = 0.5.
	slow, fast := 0, 0
	for p, c := range scheduledCount {
		switch c {
		case horizon / delta:
			slow++
		case horizon:
			fast++
		default:
			t.Fatalf("process %d scheduled %d times, want %d (slow) or %d (fast)",
				p, c, horizon/delta, horizon)
		}
	}
	if slow != n/2 || fast != n/2 {
		t.Fatalf("slow/fast split = %d/%d, want %d/%d", slow, fast, n/2, n/2)
	}
}

func TestSkewedStrideDegenerateCases(t *testing.T) {
	// δ = 1 schedules everyone every step regardless of slowFrac.
	s := NewSkewedStride(6, 1, 1.0, rng.New(1))
	if got := s.Append(0, nil, nil); len(got) != 6 {
		t.Fatalf("δ=1 scheduled %d of 6", len(got))
	}
	// slowFrac clamps: negative behaves like 0, >1 like 1.
	s = NewSkewedStride(6, 2, -3, rng.New(1))
	if got := s.Append(1, nil, nil); len(got) != 6 {
		t.Fatalf("slowFrac<0 scheduled %d of 6", len(got))
	}
	s = NewSkewedStride(6, 2, 9, rng.New(1))
	a := len(s.Append(0, nil, nil))
	b := len(s.Append(1, nil, nil))
	if a+b != 6 {
		t.Fatalf("slowFrac=1 with δ=2: %d+%d processes over a period, want 6", a, b)
	}
	// Deterministic in the stream.
	x := NewSkewedStride(10, 3, 0.4, rng.New(7))
	y := NewSkewedStride(10, 3, 0.4, rng.New(7))
	for tm := sim.Time(0); tm < 9; tm++ {
		xs := x.Append(tm, nil, nil)
		ys := y.Append(tm, nil, nil)
		if len(xs) != len(ys) {
			t.Fatalf("t=%d: skewed schedules diverge", tm)
		}
		for i := range xs {
			if xs[i] != ys[i] {
				t.Fatalf("t=%d: skewed schedules diverge at %d", tm, i)
			}
		}
	}
}
