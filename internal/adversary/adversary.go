// Package adversary provides the schedule, delay and crash policies that
// instantiate the paper's adversaries.
//
// An oblivious adversary (paper §1) fixes the schedule, the per-message
// delays and the crash pattern in advance of the execution. Obliviousness
// is obtained by construction here: every policy in this package derives
// its decisions only from the time step, the process identifiers and a
// pre-seeded random stream — never from node state, payloads or coin flips
// of the protocol. Compose the three policy kinds with Compose.
//
// Adaptive adversaries react to the execution; this package provides small
// reusable adaptive policies (e.g. CrashOnFirstSend), while the full
// Theorem 1 lower-bound adversary lives in package lowerbound because it
// needs to drive executions and clone process state.
package adversary

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
)

// Schedule decides which processes take a local step at each time.
type Schedule interface {
	// Append appends the processes scheduled at time t to buf.
	Append(t sim.Time, v sim.View, buf []sim.ProcID) []sim.ProcID
}

// DelayPolicy decides message delivery delays.
type DelayPolicy interface {
	// Delay returns the delivery delay for a message sent at time t; the
	// simulator clamps the result to [1, D].
	Delay(t sim.Time, from, to sim.ProcID) sim.Time
}

// CrashPolicy decides which processes crash at each time.
type CrashPolicy interface {
	// Append appends the processes crashing at the start of time t to buf.
	Append(t sim.Time, v sim.View, buf []sim.ProcID) []sim.ProcID
}

// Composed is an Adversary assembled from the three policy kinds.
type Composed struct {
	schedule Schedule
	delays   DelayPolicy
	crashes  CrashPolicy
}

var _ sim.Adversary = (*Composed)(nil)

// Compose builds an adversary from a schedule, delay policy and crash
// policy. Nil components default to: every process every step, delay 1, no
// crashes.
func Compose(s Schedule, d DelayPolicy, c CrashPolicy) *Composed {
	if s == nil {
		s = EveryStep{}
	}
	if d == nil {
		d = FixedDelay(1)
	}
	if c == nil {
		c = NoCrashes{}
	}
	return &Composed{schedule: s, delays: d, crashes: c}
}

// Schedule implements sim.Adversary.
func (a *Composed) Schedule(t sim.Time, v sim.View, buf []sim.ProcID) []sim.ProcID {
	return a.schedule.Append(t, v, buf)
}

// Delay implements sim.Adversary.
func (a *Composed) Delay(t sim.Time, from, to sim.ProcID) sim.Time {
	return a.delays.Delay(t, from, to)
}

// Crashes implements sim.Adversary.
func (a *Composed) Crashes(t sim.Time, v sim.View, buf []sim.ProcID) []sim.ProcID {
	return a.crashes.Append(t, v, buf)
}

// ObserveSend forwards send observations to any component that wants them
// (adaptive policies).
func (a *Composed) ObserveSend(m sim.Message) {
	if o, ok := a.schedule.(sim.SendObserver); ok {
		o.ObserveSend(m)
	}
	if o, ok := a.delays.(sim.SendObserver); ok {
		o.ObserveSend(m)
	}
	if o, ok := a.crashes.(sim.SendObserver); ok {
		o.ObserveSend(m)
	}
}

// Benign returns the friendliest adversary: synchronous schedule, delay 1,
// no crashes. Useful as a baseline and in examples.
func Benign() *Composed { return Compose(nil, nil, nil) }

// Standard returns the default oblivious adversary used across benchmarks:
// a rotating stride schedule saturating the δ bound, uniform random delays
// in [1, d], and crashes spread over the run per the given plan seed.
//
// The stream seed must be independent of the protocol seed so the adversary
// remains oblivious.
func Standard(cfg sim.Config) *Composed {
	r := rng.New(cfg.Seed).Fork(0xADBE)
	return Compose(
		NewStride(cfg.N, cfg.Delta, r.Fork(1)),
		NewUniformDelay(cfg.D, r.Fork(2)),
		NewRandomCrashes(cfg.N, cfg.F, spreadWindow(cfg), r.Fork(3)),
	)
}

// partitionHealTime places the partition heal far enough into the run to
// force cross-half traffic through the slow links first.
func partitionHealTime(cfg sim.Config) sim.Time {
	return 4 * (cfg.D + cfg.Delta) * sim.Time(log2ceil(cfg.N))
}

// spreadWindow picks a window over which Standard spreads crashes: long
// enough to exercise the epoch structure of the protocols' analyses.
func spreadWindow(cfg sim.Config) sim.Time {
	w := 8 * (cfg.D + cfg.Delta) * sim.Time(log2ceil(cfg.N))
	if w < 8 {
		w = 8
	}
	return w
}

func log2ceil(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	if l == 0 {
		l = 1
	}
	return l
}

// Named adversary presets, used by the experiment harness and CLI tools.
const (
	// PresetBenign: synchronous, delay 1, no crashes.
	PresetBenign = "benign"
	// PresetStandard: stride schedule, uniform delays, spread crashes.
	PresetStandard = "standard"
	// PresetCrashStorm: all f crashes at t=0 (tests the n/(n−f) factor).
	PresetCrashStorm = "crashstorm"
	// PresetMaxDelay: every message takes exactly d; stride schedule.
	PresetMaxDelay = "maxdelay"
	// PresetStaggered: crashes in log n waves, doubling epoch lengths, the
	// worst case for the ears epoch analysis.
	PresetStaggered = "staggered"
	// PresetPartition: the network splits into two halves whose cross
	// links run at the full delay bound d for the first part of the run,
	// then heal to delay 1; no crashes. Exercises the "pathological
	// situations" motivation of §1 (the e-mail that took two days).
	PresetPartition = "partition"
)

// Presets lists the named adversary presets.
func Presets() []string {
	return []string{PresetBenign, PresetStandard, PresetCrashStorm, PresetMaxDelay, PresetStaggered, PresetPartition}
}

// ByName builds a preset adversary for a configuration.
func ByName(name string, cfg sim.Config) (*Composed, error) {
	r := rng.New(cfg.Seed).Fork(0xADBE)
	switch name {
	case PresetBenign:
		return Benign(), nil
	case PresetStandard, "":
		return Standard(cfg), nil
	case PresetCrashStorm:
		return Compose(
			NewStride(cfg.N, cfg.Delta, r.Fork(1)),
			NewUniformDelay(cfg.D, r.Fork(2)),
			NewCrashStorm(cfg.N, cfg.F, 0, r.Fork(3)),
		), nil
	case PresetMaxDelay:
		return Compose(
			NewStride(cfg.N, cfg.Delta, r.Fork(1)),
			FixedDelay(cfg.D),
			NewRandomCrashes(cfg.N, cfg.F, spreadWindow(cfg), r.Fork(3)),
		), nil
	case PresetStaggered:
		return Compose(
			NewStride(cfg.N, cfg.Delta, r.Fork(1)),
			NewUniformDelay(cfg.D, r.Fork(2)),
			NewStaggeredCrashes(cfg.N, cfg.F, cfg.D+cfg.Delta, r.Fork(3)),
		), nil
	case PresetPartition:
		return Compose(
			NewStride(cfg.N, cfg.Delta, r.Fork(1)),
			NewPartitionDelay(cfg.N, cfg.D, partitionHealTime(cfg)),
			NoCrashes{},
		), nil
	default:
		return nil, fmt.Errorf("adversary: unknown preset %q (have %v)", name, Presets())
	}
}
