package adversary

import (
	"repro/internal/rng"
	"repro/internal/sim"
)

// EveryStep schedules every process at every time step (the synchronous
// schedule; δ = 1 is saturated).
type EveryStep struct{}

var _ Schedule = EveryStep{}

// Append implements Schedule.
func (EveryStep) Append(_ sim.Time, v sim.View, buf []sim.ProcID) []sim.ProcID {
	for p := 0; p < v.N(); p++ {
		buf = append(buf, sim.ProcID(p))
	}
	return buf
}

// Stride schedules each process exactly once every δ steps, with per-process
// phases drawn from a pre-committed random stream and re-drawn each period,
// so processes drift relative to one another while the δ bound holds. This
// saturates the paper's relative-speed bound: two processes can be up to
// 2(δ−1) steps apart in their local-step counts at any moment.
type Stride struct {
	n      int
	delta  sim.Time
	r      *rng.RNG
	phases []sim.Time // phase of each process within the current period
	period sim.Time   // index of the period for which phases are valid
}

var _ Schedule = (*Stride)(nil)

// NewStride returns a Stride schedule for n processes with gap bound delta.
// The stream r must be pre-committed (oblivious).
func NewStride(n int, delta sim.Time, r *rng.RNG) *Stride {
	if delta < 1 {
		delta = 1
	}
	s := &Stride{
		n:      n,
		delta:  delta,
		r:      r,
		phases: make([]sim.Time, n),
		period: -1,
	}
	return s
}

// Append implements Schedule.
func (s *Stride) Append(t sim.Time, _ sim.View, buf []sim.ProcID) []sim.ProcID {
	if s.delta == 1 {
		for p := 0; p < s.n; p++ {
			buf = append(buf, sim.ProcID(p))
		}
		return buf
	}
	period := t / s.delta
	if period != s.period {
		// Redraw phases for the new period. A process scheduled at phase
		// δ−1 of one period and phase 0 of the next is still within the δ
		// bound (gap δ ... gap counted as "at least once in any δ steps").
		for p := range s.phases {
			s.phases[p] = sim.Time(s.r.Intn(int(s.delta)))
		}
		s.period = period
	}
	phase := t % s.delta
	for p := 0; p < s.n; p++ {
		if s.phases[p] == phase {
			buf = append(buf, sim.ProcID(p))
		}
	}
	return buf
}

// FixedStride schedules process p at times t with t ≡ p (mod δ): a
// deterministic round-robin partition. Unlike Stride it never redraws
// phases, so it is useful when a test needs a fully predictable schedule.
type FixedStride struct {
	n     int
	delta sim.Time
}

var _ Schedule = FixedStride{}

// NewFixedStride returns the deterministic round-robin schedule.
func NewFixedStride(n int, delta sim.Time) FixedStride {
	if delta < 1 {
		delta = 1
	}
	return FixedStride{n: n, delta: delta}
}

// Append implements Schedule.
func (s FixedStride) Append(t sim.Time, _ sim.View, buf []sim.ProcID) []sim.ProcID {
	phase := t % s.delta
	for p := 0; p < s.n; p++ {
		if sim.Time(p)%s.delta == phase {
			buf = append(buf, sim.ProcID(p))
		}
	}
	return buf
}

// SkewedStride is the maximally skewed oblivious schedule: a seeded subset
// of "slow" processes is scheduled exactly once every δ steps (each at a
// fixed random phase) while every other process runs at full speed. It
// realizes the paper's relative-speed pathology in its pure form — some
// processes persistently δ times slower than the rest — without ever
// violating the δ bound, which makes it a building block for the scenario
// fuzzer's randomized adversary matrix (Stride, by redrawing phases,
// averages the skew away; SkewedStride pins it for the whole run).
type SkewedStride struct {
	n      int
	delta  sim.Time
	phases []sim.Time // phase of each slow process; -1 marks fast processes
}

var _ Schedule = (*SkewedStride)(nil)

// NewSkewedStride returns a schedule for n processes with gap bound delta
// where ~slowFrac of the processes (chosen from the pre-committed stream r)
// step only once per δ-step period. slowFrac is clamped to [0, 1]; with
// delta = 1 or slowFrac = 0 the schedule degenerates to EveryStep.
func NewSkewedStride(n int, delta sim.Time, slowFrac float64, r *rng.RNG) *SkewedStride {
	if delta < 1 {
		delta = 1
	}
	if slowFrac < 0 {
		slowFrac = 0
	}
	if slowFrac > 1 {
		slowFrac = 1
	}
	s := &SkewedStride{n: n, delta: delta, phases: make([]sim.Time, n)}
	for p := range s.phases {
		s.phases[p] = -1
	}
	if delta == 1 {
		return s
	}
	slow := int(slowFrac * float64(n))
	for _, p := range r.Sample(n, slow) {
		s.phases[p] = sim.Time(r.Intn(int(delta)))
	}
	return s
}

// Append implements Schedule.
func (s *SkewedStride) Append(t sim.Time, _ sim.View, buf []sim.ProcID) []sim.ProcID {
	phase := t % s.delta
	for p := 0; p < s.n; p++ {
		if s.phases[p] < 0 || s.phases[p] == phase {
			buf = append(buf, sim.ProcID(p))
		}
	}
	return buf
}

// SubsetSchedule schedules only the given subset of processes (every step);
// all other processes are starved. It deliberately violates the δ bound for
// the starved processes — it models the Theorem 1 adversary's tactic of
// running one partition "fast" while another is frozen, and is also used to
// isolate partitions in unit tests.
type SubsetSchedule struct {
	procs []sim.ProcID
}

var _ Schedule = (*SubsetSchedule)(nil)

// NewSubsetSchedule schedules exactly procs at every step.
func NewSubsetSchedule(procs []sim.ProcID) *SubsetSchedule {
	cp := make([]sim.ProcID, len(procs))
	copy(cp, procs)
	return &SubsetSchedule{procs: cp}
}

// SetProcs replaces the scheduled subset (the adaptive adversary moves the
// "active partition" between execution phases).
func (s *SubsetSchedule) SetProcs(procs []sim.ProcID) {
	s.procs = s.procs[:0]
	s.procs = append(s.procs, procs...)
}

// Append implements Schedule.
func (s *SubsetSchedule) Append(_ sim.Time, _ sim.View, buf []sim.ProcID) []sim.ProcID {
	return append(buf, s.procs...)
}
