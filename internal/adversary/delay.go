package adversary

import (
	"repro/internal/rng"
	"repro/internal/sim"
)

// FixedDelay delivers every message after exactly the given delay. Delay(d)
// is the adversary's "hold everything as long as allowed" policy; Delay(1)
// is the fastest network.
type FixedDelay sim.Time

var _ DelayPolicy = FixedDelay(1)

// Delay implements DelayPolicy.
func (f FixedDelay) Delay(sim.Time, sim.ProcID, sim.ProcID) sim.Time {
	return sim.Time(f)
}

// UniformDelay draws each message's delay uniformly from [1, d] using a
// pre-committed stream.
//
// Obliviousness caveat: an oblivious adversary must fix delays in advance,
// independent of the protocol's coin flips. Drawing a fresh variate per
// send event means the mapping from "k-th send of the execution" to delay
// is fixed in advance, which is the standard way to realize an oblivious
// random-delay adversary without materializing an infinite table.
type UniformDelay struct {
	d sim.Time
	r *rng.RNG
}

var _ DelayPolicy = (*UniformDelay)(nil)

// NewUniformDelay returns a UniformDelay over [1, d].
func NewUniformDelay(d sim.Time, r *rng.RNG) *UniformDelay {
	if d < 1 {
		d = 1
	}
	return &UniformDelay{d: d, r: r}
}

// Delay implements DelayPolicy.
func (u *UniformDelay) Delay(sim.Time, sim.ProcID, sim.ProcID) sim.Time {
	return 1 + sim.Time(u.r.Intn(int(u.d)))
}

// PairwiseDelay fixes a delay per (from, to) pair, drawn once from a
// pre-committed stream. It models persistently slow links: some pairs of
// processes always communicate at close to the d bound, creating the
// "e-mail that took two days" pathology the paper's introduction describes.
type PairwiseDelay struct {
	n      int
	d      sim.Time
	delays []sim.Time
}

var _ DelayPolicy = (*PairwiseDelay)(nil)

// NewPairwiseDelay builds a PairwiseDelay for n processes over [1, d].
func NewPairwiseDelay(n int, d sim.Time, r *rng.RNG) *PairwiseDelay {
	if d < 1 {
		d = 1
	}
	p := &PairwiseDelay{n: n, d: d, delays: make([]sim.Time, n*n)}
	for i := range p.delays {
		p.delays[i] = 1 + sim.Time(r.Intn(int(d)))
	}
	return p
}

// Delay implements DelayPolicy.
func (p *PairwiseDelay) Delay(_ sim.Time, from, to sim.ProcID) sim.Time {
	if int(from) < 0 || int(from) >= p.n || int(to) < 0 || int(to) >= p.n {
		return 1
	}
	return p.delays[int(from)*p.n+int(to)]
}

// PartitionDelay splits [0, n) into two halves; messages crossing the
// split take the full delay d until the heal time, after which every link
// runs at delay 1. Intra-half traffic is always fast. Models a transient
// network partition softened to the model's reliable-but-slow links
// (messages are never lost in the paper's model, only delayed).
type PartitionDelay struct {
	n      int
	d      sim.Time
	healAt sim.Time
}

var _ DelayPolicy = (*PartitionDelay)(nil)

// NewPartitionDelay builds a PartitionDelay healing at healAt.
func NewPartitionDelay(n int, d, healAt sim.Time) *PartitionDelay {
	if d < 1 {
		d = 1
	}
	return &PartitionDelay{n: n, d: d, healAt: healAt}
}

// Delay implements DelayPolicy.
func (p *PartitionDelay) Delay(t sim.Time, from, to sim.ProcID) sim.Time {
	if t >= p.healAt {
		return 1
	}
	half := sim.ProcID(p.n / 2)
	if (from < half) != (to < half) {
		return p.d
	}
	return 1
}

// TargetedDelay delays all messages to/from a victim set by exactly d while
// the rest of the network runs at delay 1. This is the classic partial
// synchrony pathology: a few processes look failed without being failed.
type TargetedDelay struct {
	d       sim.Time
	victims map[sim.ProcID]bool
}

var _ DelayPolicy = (*TargetedDelay)(nil)

// NewTargetedDelay returns a TargetedDelay hitting the given victims.
func NewTargetedDelay(d sim.Time, victims []sim.ProcID) *TargetedDelay {
	m := make(map[sim.ProcID]bool, len(victims))
	for _, p := range victims {
		m[p] = true
	}
	return &TargetedDelay{d: d, victims: m}
}

// Delay implements DelayPolicy.
func (t *TargetedDelay) Delay(_ sim.Time, from, to sim.ProcID) sim.Time {
	if t.victims[from] || t.victims[to] {
		return t.d
	}
	return 1
}
