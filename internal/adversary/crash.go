package adversary

import (
	"sort"

	"repro/internal/rng"
	"repro/internal/sim"
)

// NoCrashes is the failure-free crash policy.
type NoCrashes struct{}

var _ CrashPolicy = NoCrashes{}

// Append implements CrashPolicy.
func (NoCrashes) Append(_ sim.Time, _ sim.View, buf []sim.ProcID) []sim.ProcID {
	return buf
}

// planned is a pre-committed crash plan: a sorted list of (time, process)
// pairs fixed before the execution (oblivious by construction).
type planned struct {
	times []sim.Time
	procs []sim.ProcID
	next  int
}

func (p *planned) Append(t sim.Time, _ sim.View, buf []sim.ProcID) []sim.ProcID {
	for p.next < len(p.times) && p.times[p.next] <= t {
		buf = append(buf, p.procs[p.next])
		p.next++
	}
	return buf
}

// newPlanned sorts and wraps a crash plan.
func newPlanned(times []sim.Time, procs []sim.ProcID) *planned {
	idx := make([]int, len(times))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return times[idx[a]] < times[idx[b]] })
	st := make([]sim.Time, len(times))
	sp := make([]sim.ProcID, len(procs))
	for i, j := range idx {
		st[i] = times[j]
		sp[i] = procs[j]
	}
	return &planned{times: st, procs: sp}
}

// NewCrashPlan builds a crash policy from an explicit list of (time,
// process) pairs. Pairs beyond the simulator's crash budget F are ignored
// at run time by the kernel.
func NewCrashPlan(times []sim.Time, procs []sim.ProcID) CrashPolicy {
	return newPlanned(times, procs)
}

// NewRandomCrashes crashes f distinct processes, chosen uniformly, at times
// uniform in [0, window]. All randomness comes from the pre-committed
// stream r.
func NewRandomCrashes(n, f int, window sim.Time, r *rng.RNG) CrashPolicy {
	if f <= 0 {
		return NoCrashes{}
	}
	victims := r.Sample(n, f)
	times := make([]sim.Time, len(victims))
	procs := make([]sim.ProcID, len(victims))
	for i, v := range victims {
		procs[i] = sim.ProcID(v)
		if window <= 0 {
			times[i] = 0
		} else {
			times[i] = sim.Time(r.Intn(int(window) + 1))
		}
	}
	return newPlanned(times, procs)
}

// NewCrashStorm crashes f distinct processes all at the same time t0. With
// t0 = 0 this realizes the "only n−f processes were ever alive" regime that
// maximizes the n/(n−f) factor in the ears analysis.
func NewCrashStorm(n, f int, t0 sim.Time, r *rng.RNG) CrashPolicy {
	if f <= 0 {
		return NoCrashes{}
	}
	victims := r.Sample(n, f)
	times := make([]sim.Time, len(victims))
	procs := make([]sim.ProcID, len(victims))
	for i, v := range victims {
		procs[i] = sim.ProcID(v)
		times[i] = t0
	}
	return newPlanned(times, procs)
}

// NewStaggeredCrashes crashes half the remaining budget in waves at times
// unit, 2·unit, 4·unit, 8·unit, ... — the epoch-doubling pattern that the
// ears analysis (§3.2) identifies as the structure of the worst case: each
// epoch halves the set of live processes until the first "long" epoch.
func NewStaggeredCrashes(n, f int, unit sim.Time, r *rng.RNG) CrashPolicy {
	if f <= 0 {
		return NoCrashes{}
	}
	if unit < 1 {
		unit = 1
	}
	victims := r.Sample(n, f)
	times := make([]sim.Time, 0, len(victims))
	procs := make([]sim.ProcID, 0, len(victims))
	remaining := len(victims)
	at := unit
	i := 0
	for remaining > 0 {
		wave := (remaining + 1) / 2
		for k := 0; k < wave; k++ {
			procs = append(procs, sim.ProcID(victims[i]))
			times = append(times, at)
			i++
		}
		remaining -= wave
		at *= 2
	}
	return newPlanned(times, procs)
}

// CrashOnFirstSend is a simple *adaptive* crash policy: it crashes a process
// the moment that process first sends a message, until the budget is spent.
// It models the adversary "selectively failing processes that may attempt
// to help" from the Theorem 1 proof sketch, and is used in tests to verify
// that protocols survive maximally inconvenient crash timing.
type CrashOnFirstSend struct {
	budget  int
	sent    map[sim.ProcID]bool
	pending []sim.ProcID
}

var (
	_ CrashPolicy      = (*CrashOnFirstSend)(nil)
	_ sim.SendObserver = (*CrashOnFirstSend)(nil)
)

// NewCrashOnFirstSend returns the adaptive policy with a crash budget.
func NewCrashOnFirstSend(budget int) *CrashOnFirstSend {
	return &CrashOnFirstSend{budget: budget, sent: make(map[sim.ProcID]bool)}
}

// ObserveSend implements sim.SendObserver.
func (c *CrashOnFirstSend) ObserveSend(m sim.Message) {
	if c.budget <= 0 || c.sent[m.From] {
		return
	}
	c.sent[m.From] = true
	c.pending = append(c.pending, m.From)
	c.budget--
}

// Append implements CrashPolicy: crashes queued victims at the next step.
func (c *CrashOnFirstSend) Append(_ sim.Time, _ sim.View, buf []sim.ProcID) []sim.ProcID {
	buf = append(buf, c.pending...)
	c.pending = c.pending[:0]
	return buf
}
