package adversary

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/topology"
)

// fakeView is a minimal sim.View for schedule/crash tests.
type fakeView struct {
	n     int
	now   sim.Time
	alive []bool
}

func newFakeView(n int) *fakeView {
	v := &fakeView{n: n, alive: make([]bool, n)}
	for i := range v.alive {
		v.alive[i] = true
	}
	return v
}

func (v *fakeView) N() int                  { return v.n }
func (v *fakeView) Now() sim.Time           { return v.now }
func (v *fakeView) Alive(p sim.ProcID) bool { return v.alive[p] }
func (v *fakeView) AliveCount() int {
	c := 0
	for _, a := range v.alive {
		if a {
			c++
		}
	}
	return c
}
func (v *fakeView) Node(p sim.ProcID) sim.Node    { return nil }
func (v *fakeView) MessagesSent() int64           { return 0 }
func (v *fakeView) StepsTaken(p sim.ProcID) int64 { return 0 }
func (v *fakeView) Graph() topology.Graph         { return nil }

func TestEveryStepSchedulesAll(t *testing.T) {
	v := newFakeView(7)
	got := EveryStep{}.Append(3, v, nil)
	if len(got) != 7 {
		t.Fatalf("scheduled %d, want 7", len(got))
	}
}

func TestStrideRespectsDeltaBound(t *testing.T) {
	const n, delta, horizon = 20, 5, 500
	v := newFakeView(n)
	s := NewStride(n, delta, rng.New(3))
	last := make([]sim.Time, n)
	for i := range last {
		last[i] = -1
	}
	var buf []sim.ProcID
	for tm := sim.Time(0); tm < horizon; tm++ {
		buf = s.Append(tm, v, buf[:0])
		for _, p := range buf {
			gap := tm - last[p]
			// Scheduled at least once in any window of 2δ... the bound we
			// promise is: within each aligned δ-period each process is
			// scheduled exactly once, so consecutive schedulings are < 2δ
			// apart.
			if last[p] >= 0 && gap > 2*delta-1 {
				t.Fatalf("process %d starved for %d steps (δ=%d)", p, gap, delta)
			}
			last[p] = tm
		}
	}
	// Every process scheduled exactly horizon/delta times.
	counts := make([]int, n)
	s2 := NewStride(n, delta, rng.New(3))
	for tm := sim.Time(0); tm < horizon; tm++ {
		for _, p := range s2.Append(tm, v, nil) {
			counts[p]++
		}
	}
	for p, c := range counts {
		if c != horizon/delta {
			t.Fatalf("process %d scheduled %d times, want %d", p, c, horizon/delta)
		}
	}
}

func TestStrideDeltaOneIsSynchronous(t *testing.T) {
	v := newFakeView(5)
	s := NewStride(5, 1, rng.New(1))
	for tm := sim.Time(0); tm < 10; tm++ {
		if got := s.Append(tm, v, nil); len(got) != 5 {
			t.Fatalf("t=%d scheduled %d, want 5", tm, len(got))
		}
	}
}

func TestFixedStridePartition(t *testing.T) {
	v := newFakeView(10)
	s := NewFixedStride(10, 3)
	seen := make(map[sim.ProcID]sim.Time)
	for tm := sim.Time(0); tm < 3; tm++ {
		for _, p := range s.Append(tm, v, nil) {
			if prev, dup := seen[p]; dup {
				t.Fatalf("process %d scheduled twice in one period (at %d and %d)", p, prev, tm)
			}
			seen[p] = tm
		}
	}
	if len(seen) != 10 {
		t.Fatalf("only %d processes scheduled in one period", len(seen))
	}
}

func TestSubsetSchedule(t *testing.T) {
	v := newFakeView(10)
	s := NewSubsetSchedule([]sim.ProcID{1, 3, 5})
	got := s.Append(0, v, nil)
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("got %v", got)
	}
	s.SetProcs([]sim.ProcID{7})
	got = s.Append(1, v, nil)
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("after SetProcs got %v", got)
	}
}

func TestFixedDelay(t *testing.T) {
	if d := FixedDelay(4).Delay(0, 1, 2); d != 4 {
		t.Fatalf("FixedDelay = %d", d)
	}
}

func TestUniformDelayRange(t *testing.T) {
	u := NewUniformDelay(6, rng.New(9))
	seen := map[sim.Time]bool{}
	for i := 0; i < 10000; i++ {
		d := u.Delay(0, 0, 1)
		if d < 1 || d > 6 {
			t.Fatalf("delay %d out of [1,6]", d)
		}
		seen[d] = true
	}
	if len(seen) != 6 {
		t.Fatalf("only %d distinct delays observed", len(seen))
	}
}

func TestPairwiseDelayStable(t *testing.T) {
	p := NewPairwiseDelay(5, 9, rng.New(2))
	d1 := p.Delay(0, 1, 2)
	d2 := p.Delay(100, 1, 2)
	if d1 != d2 {
		t.Fatal("pairwise delay not stable over time")
	}
	if d := p.Delay(0, 99, 2); d != 1 {
		t.Fatalf("out-of-range pair delay = %d, want 1", d)
	}
}

func TestTargetedDelay(t *testing.T) {
	td := NewTargetedDelay(8, []sim.ProcID{2})
	if d := td.Delay(0, 2, 3); d != 8 {
		t.Fatalf("victim-from delay = %d", d)
	}
	if d := td.Delay(0, 3, 2); d != 8 {
		t.Fatalf("victim-to delay = %d", d)
	}
	if d := td.Delay(0, 3, 4); d != 1 {
		t.Fatalf("bystander delay = %d", d)
	}
}

func TestRandomCrashesBudgetAndWindow(t *testing.T) {
	v := newFakeView(20)
	c := NewRandomCrashes(20, 5, 10, rng.New(4))
	var all []sim.ProcID
	for tm := sim.Time(0); tm <= 10; tm++ {
		all = c.Append(tm, v, all)
	}
	if len(all) != 5 {
		t.Fatalf("crashed %d, want 5", len(all))
	}
	seen := map[sim.ProcID]bool{}
	for _, p := range all {
		if seen[p] {
			t.Fatalf("process %d crashed twice", p)
		}
		seen[p] = true
	}
	// After the window nothing more crashes.
	if more := c.Append(100, v, nil); len(more) != 0 {
		t.Fatalf("crashes after window: %v", more)
	}
}

func TestCrashStormAllAtOnce(t *testing.T) {
	v := newFakeView(10)
	c := NewCrashStorm(10, 4, 3, rng.New(5))
	if got := c.Append(2, v, nil); len(got) != 0 {
		t.Fatalf("crashes before t0: %v", got)
	}
	if got := c.Append(3, v, nil); len(got) != 4 {
		t.Fatalf("crashes at t0 = %d, want 4", len(got))
	}
}

func TestStaggeredCrashesWaves(t *testing.T) {
	v := newFakeView(100)
	c := NewStaggeredCrashes(100, 16, 2, rng.New(6))
	total := 0
	for tm := sim.Time(0); tm < 1000; tm++ {
		total += len(c.Append(tm, v, nil))
	}
	if total != 16 {
		t.Fatalf("staggered crashed %d, want 16", total)
	}
}

func TestNoCrashesForZeroBudget(t *testing.T) {
	if _, ok := NewRandomCrashes(10, 0, 5, rng.New(1)).(NoCrashes); !ok {
		t.Fatal("zero budget should return NoCrashes")
	}
	if _, ok := NewCrashStorm(10, 0, 5, rng.New(1)).(NoCrashes); !ok {
		t.Fatal("zero budget storm should return NoCrashes")
	}
}

func TestCrashOnFirstSendAdaptive(t *testing.T) {
	c := NewCrashOnFirstSend(2)
	c.ObserveSend(sim.Message{From: 3, To: 4})
	c.ObserveSend(sim.Message{From: 3, To: 5}) // same sender: no double charge
	c.ObserveSend(sim.Message{From: 7, To: 1})
	c.ObserveSend(sim.Message{From: 9, To: 1}) // budget exhausted
	v := newFakeView(10)
	got := c.Append(1, v, nil)
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("victims = %v, want [3 7]", got)
	}
	if got = c.Append(2, v, nil); len(got) != 0 {
		t.Fatalf("victims repeated: %v", got)
	}
}

func TestComposeDefaultsAndByName(t *testing.T) {
	cfg := sim.Config{N: 8, F: 2, D: 3, Delta: 2, Seed: 1}
	for _, name := range Presets() {
		adv, err := ByName(name, cfg)
		if err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		if adv == nil {
			t.Fatalf("preset %s returned nil", name)
		}
	}
	if _, err := ByName("nope", cfg); err == nil {
		t.Fatal("unknown preset accepted")
	}
	// Default (empty) name maps to standard.
	if _, err := ByName("", cfg); err != nil {
		t.Fatal(err)
	}
	// Benign defaults: all processes, delay 1, no crashes.
	b := Benign()
	v := newFakeView(4)
	if got := b.Schedule(0, v, nil); len(got) != 4 {
		t.Fatalf("benign scheduled %d", len(got))
	}
	if d := b.Delay(0, 0, 1); d != 1 {
		t.Fatalf("benign delay %d", d)
	}
	if got := b.Crashes(0, v, nil); len(got) != 0 {
		t.Fatalf("benign crashes %v", got)
	}
}

// Obliviousness regression: two adversaries built with the same seed must
// make identical decisions regardless of what the protocol does (modeled
// here by querying in different interleavings).
func TestStandardAdversaryIsPreCommitted(t *testing.T) {
	cfg := sim.Config{N: 16, F: 4, D: 4, Delta: 3, Seed: 42}
	v := newFakeView(16)

	a1, _ := ByName(PresetStandard, cfg)
	a2, _ := ByName(PresetStandard, cfg)

	// Same schedule streams.
	for tm := sim.Time(0); tm < 60; tm++ {
		s1 := a1.Schedule(tm, v, nil)
		s2 := a2.Schedule(tm, v, nil)
		if len(s1) != len(s2) {
			t.Fatalf("t=%d: schedules diverge", tm)
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("t=%d: schedules diverge at %d", tm, i)
			}
		}
		c1 := a1.Crashes(tm, v, nil)
		c2 := a2.Crashes(tm, v, nil)
		if len(c1) != len(c2) {
			t.Fatalf("t=%d: crash plans diverge", tm)
		}
	}
}

func TestPartitionDelayHealing(t *testing.T) {
	p := NewPartitionDelay(10, 7, 100)
	// Cross-half before heal: slow.
	if d := p.Delay(50, 1, 8); d != 7 {
		t.Fatalf("cross-half delay = %d, want 7", d)
	}
	// Intra-half before heal: fast.
	if d := p.Delay(50, 1, 3); d != 1 {
		t.Fatalf("intra-half delay = %d, want 1", d)
	}
	if d := p.Delay(50, 8, 9); d != 1 {
		t.Fatalf("intra-half (upper) delay = %d, want 1", d)
	}
	// After heal: everything fast.
	if d := p.Delay(100, 1, 8); d != 1 {
		t.Fatalf("post-heal delay = %d, want 1", d)
	}
}
