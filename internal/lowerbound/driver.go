package lowerbound

import (
	"fmt"

	"repro/internal/sim"
)

// driver is a hand-operated simulation kernel. Unlike sim.World it gives
// the caller — the adaptive adversary — direct control over which process
// steps when, which messages are delivered, withheld or dropped, and lets
// it clone node state mid-execution. All messages are still counted at
// send time, so complexity accounting matches sim.World.
type driver struct {
	n       int
	nodes   []sim.Node
	pending [][]sim.Message // deliverable messages per destination
	held    [][]sim.Message // messages withheld by the adversary
	alive   []bool
	now     sim.Time
	msgs    int64
	crashes int

	out *sim.Outbox
	buf []sim.Message
}

func newDriver(n int, nodes []sim.Node) *driver {
	d := &driver{
		n:       n,
		nodes:   nodes,
		pending: make([][]sim.Message, n),
		held:    make([][]sim.Message, n),
		alive:   make([]bool, n),
		out:     sim.NewOutbox(0, 0, n),
	}
	for i := range d.alive {
		d.alive[i] = true
	}
	return d
}

func (d *driver) crash(p sim.ProcID) { d.alive[p] = false; d.crashes++ }

func (d *driver) heldFor(p sim.ProcID) []sim.Message {
	cp := make([]sim.Message, len(d.held[p]))
	copy(cp, d.held[p])
	return cp
}

func (d *driver) enqueue(m sim.Message, delay sim.Time) {
	m.ReadyAt = d.now + delay
	d.pending[m.To] = append(d.pending[m.To], m)
}

// drainReady removes and returns messages deliverable to p at the current
// time. The returned slice is valid until the next drainReady call.
func (d *driver) drainReady(p sim.ProcID) []sim.Message {
	q := d.pending[p]
	if len(q) == 0 {
		return nil
	}
	d.buf = d.buf[:0]
	keep := q[:0]
	for _, m := range q {
		if m.ReadyAt <= d.now {
			d.buf = append(d.buf, m)
		} else {
			keep = append(keep, m)
		}
	}
	d.pending[p] = keep
	return d.buf
}

// runUntilQuiet executes the processes in sched, every step, with delay-1
// delivery among them, withholding messages to processes marked in hold.
// It returns the time at which every scheduled process is quiescent and no
// message is pending for a scheduled process.
func (d *driver) runUntilQuiet(sched []sim.ProcID, hold []bool, maxSteps sim.Time) (sim.Time, error) {
	start := d.now
	for d.now-start < maxSteps {
		d.now++
		for _, p := range sched {
			if !d.alive[p] {
				continue
			}
			inbox := d.drainReady(p)
			d.out.Reset(p, d.now, d.n)
			d.nodes[p].Step(d.now, inbox, d.out)
			for _, m := range d.out.Messages() {
				d.msgs++
				if hold[m.To] {
					d.held[m.To] = append(d.held[m.To], m)
				} else {
					d.enqueue(m, 1)
				}
			}
		}
		if d.quiet(sched) {
			return d.now, nil
		}
	}
	return d.now, fmt.Errorf("lowerbound: phase 1 did not quiesce within %d steps", maxSteps)
}

// quiet reports whether all scheduled processes are quiescent with no
// pending deliverable messages.
func (d *driver) quiet(sched []sim.ProcID) bool {
	for _, p := range sched {
		if !d.alive[p] {
			continue
		}
		if len(d.pending[p]) > 0 {
			return false
		}
		if !d.nodes[p].Quiescent() {
			return false
		}
	}
	return true
}

// stepNoDeliver steps p, delivering only its held phase-1 messages when
// first is set; every message p sends is counted and then withheld forever
// (the adversary sets d ≥ f/2+1 so nothing arrives within the window).
func (d *driver) stepNoDeliver(p sim.ProcID, first bool) {
	if !d.alive[p] {
		return
	}
	var inbox []sim.Message
	if first {
		inbox = d.held[p]
		d.held[p] = nil
	}
	d.out.Reset(p, d.now, d.n)
	d.nodes[p].Step(d.now, inbox, d.out)
	d.msgs += int64(len(d.out.Messages()))
}

// stepDeliverPair steps p with held messages (first step) plus any pending
// deliveries, and returns a copy of the messages p sent for the adversary
// to route.
func (d *driver) stepDeliverPair(p sim.ProcID, first bool) []sim.Message {
	if !d.alive[p] {
		return nil
	}
	inbox := d.drainReady(p)
	if first {
		inbox = append(append([]sim.Message(nil), d.held[p]...), inbox...)
		d.held[p] = nil
	}
	d.out.Reset(p, d.now, d.n)
	d.nodes[p].Step(d.now, inbox, d.out)
	msgs := d.out.Messages()
	d.msgs += int64(len(msgs))
	cp := make([]sim.Message, len(msgs))
	copy(cp, msgs)
	return cp
}
