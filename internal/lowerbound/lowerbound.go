// Package lowerbound implements the adaptive adversary from the proof of
// Theorem 1 ("The Cost of Asynchrony", §2 and Figure 1): for every gossip
// algorithm there are d, δ ≥ 1 and an adaptive adversary causing f < n
// failures such that, in expectation, either the algorithm sends
// Ω(n + f²) messages or runs for Ω(f(d+δ)) time.
//
// The strategy, verbatim from the proof:
//
//  1. Partition [n] into S1 (size n − f/2) and S2 (size f/2), with
//     f capped at n/4. Run S1 alone with d = δ = 1, withholding all
//     messages to S2, until every process in S1 is quiescent at some
//     time t. If t > f the execution is already slow (time case).
//  2. For each p ∈ S2, estimate — over p's future coin flips, by cloning
//     its state and replaying with fresh randomness — the expected number
//     of messages p would send during f/2 isolated local steps after
//     receiving its withheld messages. Call p "promiscuous" if that
//     expectation is at least f/32.
//  3. Case 1 (≥ f/4 promiscuous): schedule all of S2 for f/2 steps with
//     no deliveries (d ≥ f/2+1). The promiscuous processes alone send
//     Ω(f²) messages. No process crashes.
//  4. Case 2 (< f/4 promiscuous): find two non-promiscuous p, q that with
//     probability ≥ 9/16 do not message each other (the pigeonhole pair
//     from the proof); crash the rest of S2, run p and q for f/2 steps
//     with d = 1 while crashing every S1 process they contact. With
//     constant probability they never exchange rumors, so gossip cannot
//     complete before time (d+δ)·f/2.
//
// The package drives protocol nodes directly (its adversary is adaptive:
// it inspects state, clones processes and branches executions), which is
// precisely the power the paper grants an adaptive adversary and denies an
// oblivious one.
package lowerbound

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Config parameterizes the adversary.
type Config struct {
	// N is the number of processes; F the failure budget (capped at N/4 by
	// the strategy, per the proof).
	N int
	F int
	// Seed drives node randomness and the adversary's Monte Carlo.
	Seed int64
	// Trials is the number of Monte Carlo replays per S2 process used to
	// estimate expected message counts and send probabilities (default 32).
	Trials int
	// MaxPhase1 caps the quiescence wait in phase 1 (default 1<<20 steps).
	MaxPhase1 sim.Time
}

func (c Config) withDefaults() Config {
	if c.Trials == 0 {
		c.Trials = 32
	}
	if c.MaxPhase1 == 0 {
		c.MaxPhase1 = 1 << 20
	}
	return c
}

// Case identifies which branch of the Theorem 1 dichotomy the adversary
// forced.
type Case string

// The three outcomes of the strategy.
const (
	// CaseSlowStart: S1 alone needed more than f steps to quiesce with
	// d = δ = 1, so the time bound holds outright (the proof's "otherwise
	// we can fail the processes in S2" branch).
	CaseSlowStart Case = "slow-start"
	// CaseMessages: Case 1 — promiscuous majority, Ω(f²) messages forced.
	CaseMessages Case = "messages"
	// CaseIsolation: Case 2 — a non-communicating pair was isolated,
	// Ω(f(d+δ)) time forced.
	CaseIsolation Case = "isolation"
)

// Report is the outcome of running the adversary against a protocol.
type Report struct {
	// Case is the branch that fired.
	Case Case
	// FEffective is the capped failure budget f used by the strategy.
	FEffective int
	// Phase1End is the S1 quiescence time t.
	Phase1End sim.Time
	// Promiscuous is the number of promiscuous processes in S2.
	Promiscuous int
	// S2Size is |S2| = f/2.
	S2Size int
	// ForcedMessages is the number of messages sent by S2 processes in the
	// Case 1 execution (0 in other cases).
	ForcedMessages int64
	// TotalMessages counts all messages in the constructed execution,
	// including phase 1.
	TotalMessages int64
	// ForcedTime is the total execution time of the constructed execution.
	ForcedTime sim.Time
	// PairCommunicated reports whether, in Case 2, the isolated pair
	// exchanged a message anyway (probability ≤ 7/16 per the proof; the
	// run still counts toward the expectation).
	PairCommunicated bool
	// Pair is the isolated pair in Case 2.
	Pair [2]sim.ProcID
	// Crashes is the number of crashed processes.
	Crashes int
	// MessageTarget is the Ω(f²) reference value f²/128 from the proof
	// (f/4 promiscuous × f/32 expected messages each).
	MessageTarget int64
	// TimeTarget is the Ω(f(d+δ)) reference value: the isolated pair runs
	// f/2 local steps that, at d = δ = 1, span f/2 time steps here (the
	// paper's (d+δ)·f/2 accounting charges both the step and the delivery
	// to each iteration; the Ω constant absorbs the factor of 2).
	TimeTarget sim.Time
}

// Satisfied reports whether the constructed execution witnesses the
// theorem's disjunction: messages ≥ MessageTarget or time ≥ TimeTarget.
func (r Report) Satisfied() bool {
	return r.TotalMessages >= r.MessageTarget || r.ForcedTime >= r.TimeTarget
}

// String summarizes the report.
func (r Report) String() string {
	return fmt.Sprintf("case=%s f=%d t1=%d promiscuous=%d/%d msgs=%d (target %d) time=%d (target %d)",
		r.Case, r.FEffective, r.Phase1End, r.Promiscuous, r.S2Size,
		r.TotalMessages, r.MessageTarget, r.ForcedTime, r.TimeTarget)
}

// Run executes the Theorem 1 strategy against the protocol.
func Run(proto core.Protocol, params core.Params, cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	params.N, params.F = cfg.N, cfg.F
	params = params.WithDefaults()
	if err := params.Validate(); err != nil {
		return Report{}, err
	}

	// Cap f at n/4 ("For f > n/4 the adversary follows the strategy with
	// f = n/4"). The strategy needs |S2| = f/2 ≥ 2.
	f := cfg.F
	if f > cfg.N/4 {
		f = cfg.N / 4
	}
	if f < 4 {
		return Report{}, fmt.Errorf("lowerbound: effective f = %d too small (need ≥ 4)", f)
	}

	nodes, err := core.NewNodes(proto, params, cfg.Seed)
	if err != nil {
		return Report{}, err
	}
	d := newDriver(cfg.N, nodes)

	// Partition: S2 = the f/2 highest-numbered processes. Any fixed split
	// works; the adversary commits to it before observing anything.
	s2size := f / 2
	s1 := make([]sim.ProcID, 0, cfg.N-s2size)
	s2 := make([]sim.ProcID, 0, s2size)
	for p := 0; p < cfg.N; p++ {
		if p >= cfg.N-s2size {
			s2 = append(s2, sim.ProcID(p))
		} else {
			s1 = append(s1, sim.ProcID(p))
		}
	}
	inS2 := make([]bool, cfg.N)
	for _, p := range s2 {
		inS2[p] = true
	}

	rep := Report{
		FEffective:    f,
		S2Size:        s2size,
		MessageTarget: int64(f) * int64(f) / 128,
		TimeTarget:    sim.Time(f / 2),
	}

	// Phase 1: run S1 with d = δ = 1; messages to S2 are held.
	t1, err := d.runUntilQuiet(s1, inS2, cfg.MaxPhase1)
	if err != nil {
		return rep, err
	}
	rep.Phase1End = t1
	if t1 > sim.Time(f) {
		// Execution already slow: fail all of S2 (they never stepped) and
		// report the time case.
		rep.Case = CaseSlowStart
		rep.Crashes = s2size
		rep.ForcedTime = t1
		rep.TotalMessages = d.msgs
		return rep, nil
	}

	// Phase 2: classify S2 by Monte Carlo over future coin flips.
	cls, err := classify(d, s2, f, cfg)
	if err != nil {
		return rep, err
	}
	rep.Promiscuous = cls.promiscuousCount()

	if rep.Promiscuous >= f/4 {
		phase1Msgs := d.msgs
		runCase1(d, s2, f)
		rep.Case = CaseMessages
		rep.ForcedMessages = d.msgs - phase1Msgs
		rep.TotalMessages = d.msgs
		rep.ForcedTime = d.now
		return rep, nil
	}

	p, q, ok := cls.findPair()
	if !ok {
		// Estimation noise can hide the pigeonhole pair; fall back to the
		// least-communicating pair, which realizes the same execution with
		// a (slightly) different success probability.
		p, q = cls.bestEffortPair()
	}
	communicated := runCase2(d, s2, p, q, f, inS2)
	rep.Case = CaseIsolation
	rep.Pair = [2]sim.ProcID{p, q}
	rep.PairCommunicated = communicated
	rep.TotalMessages = d.msgs
	rep.Crashes = d.crashes
	// The pair ran f/2 local steps after t1; with d = δ = 1 each step
	// costs (d+δ)/2... the proof accounts (d+δ)·f/2; we report elapsed
	// simulation time from 0.
	rep.ForcedTime = d.now
	return rep, nil
}

// ErrNotCloneable is returned when the protocol's nodes do not support the
// cloning the adaptive adversary requires.
var ErrNotCloneable = errors.New("lowerbound: node does not implement sim.Cloner")

// classification holds Monte Carlo estimates for S2.
type classification struct {
	s2          []sim.ProcID
	expected    []float64   // expected messages during f/2 isolated steps
	sendProb    [][]float64 // sendProb[i][q]: Pr[≥1 message to q]
	promiscuous []bool
	threshold   float64
}

func (c *classification) promiscuousCount() int {
	n := 0
	for _, p := range c.promiscuous {
		if p {
			n++
		}
	}
	return n
}

// findPair looks for non-promiscuous p, q with q ∈ N(p) and p ∈ N(q),
// i.e. both directions have send probability < 1/4.
func (c *classification) findPair() (sim.ProcID, sim.ProcID, bool) {
	for i := range c.s2 {
		if c.promiscuous[i] {
			continue
		}
		for j := i + 1; j < len(c.s2); j++ {
			if c.promiscuous[j] {
				continue
			}
			if c.sendProb[i][c.s2[j]] < 0.25 && c.sendProb[j][c.s2[i]] < 0.25 {
				return c.s2[i], c.s2[j], true
			}
		}
	}
	return 0, 0, false
}

// bestEffortPair returns the pair minimizing the larger of the two mutual
// send probabilities.
func (c *classification) bestEffortPair() (sim.ProcID, sim.ProcID) {
	best := 2.0
	var bp, bq sim.ProcID
	for i := range c.s2 {
		for j := i + 1; j < len(c.s2); j++ {
			m := c.sendProb[i][c.s2[j]]
			if w := c.sendProb[j][c.s2[i]]; w > m {
				m = w
			}
			if m < best {
				best = m
				bp, bq = c.s2[i], c.s2[j]
			}
		}
	}
	return bp, bq
}

// classify estimates, for each p ∈ S2, the message behaviour of p over f/2
// isolated local steps following delivery of its held messages.
func classify(d *driver, s2 []sim.ProcID, f int, cfg Config) (*classification, error) {
	cls := &classification{
		s2:          s2,
		expected:    make([]float64, len(s2)),
		sendProb:    make([][]float64, len(s2)),
		promiscuous: make([]bool, len(s2)),
		threshold:   float64(f) / 32,
	}
	mc := rng.New(cfg.Seed).Fork(0xC1A551F1)
	steps := f / 2
	for i, p := range s2 {
		cls.sendProb[i] = make([]float64, d.n)
		cloner, ok := d.nodes[p].(sim.Cloner)
		if !ok {
			return nil, fmt.Errorf("%w (protocol %T)", ErrNotCloneable, d.nodes[p])
		}
		held := d.heldFor(p)
		var total float64
		hit := make([]bool, d.n)
		for trial := 0; trial < cfg.Trials; trial++ {
			node := cloner.CloneNode()
			if rs, ok := node.(core.Reseeder); ok {
				rs.Reseed(mc.Fork(uint64(int(p)*1024 + trial)))
			}
			for q := range hit {
				hit[q] = false
			}
			sent := simulateIsolated(node, held, steps, d.now, hit)
			total += float64(sent)
			for q, h := range hit {
				if h {
					cls.sendProb[i][q] += 1.0 / float64(cfg.Trials)
				}
			}
		}
		cls.expected[i] = total / float64(cfg.Trials)
		cls.promiscuous[i] = cls.expected[i] >= cls.threshold
	}
	return cls, nil
}

// simulateIsolated runs node for `steps` local steps: the held messages
// are delivered at the first step, then the node receives nothing. It
// returns the number of messages sent and marks targets in hit.
func simulateIsolated(node sim.Node, held []sim.Message, steps int, start sim.Time, hit []bool) int {
	out := sim.NewOutbox(node.ID(), start, len(hit))
	sent := 0
	for s := 0; s < steps; s++ {
		now := start + sim.Time(s)
		out.Reset(node.ID(), now, len(hit))
		var inbox []sim.Message
		if s == 0 {
			inbox = held
		}
		node.Step(now, inbox, out)
		for _, m := range out.Messages() {
			sent++
			hit[m.To] = true
		}
	}
	return sent
}

// runCase1 schedules all of S2 for f/2 steps with no deliveries at all
// (d ≥ f/2+1): every message sent is counted, none arrives.
func runCase1(d *driver, s2 []sim.ProcID, f int) {
	// Deliver the held phase-1 messages at each process's first step, per
	// the proof ("simulate the result of process p receiving any messages
	// from S1"), then withhold everything.
	for s := 0; s < f/2; s++ {
		d.now++
		for _, p := range s2 {
			d.stepNoDeliver(p, s == 0)
		}
	}
}

// runCase2 crashes all of S2 except p and q, runs the pair for f/2 steps
// with delay-1 delivery between them, and crashes any S1 process they try
// to contact. It reports whether p and q ever messaged each other.
func runCase2(d *driver, s2 []sim.ProcID, p, q sim.ProcID, f int, inS2 []bool) bool {
	for _, x := range s2 {
		if x != p && x != q {
			d.crash(x)
		}
	}
	communicated := false
	for s := 0; s < f/2; s++ {
		d.now++
		for _, x := range []sim.ProcID{p, q} {
			msgs := d.stepDeliverPair(x, s == 0)
			for _, m := range msgs {
				if m.To == p || m.To == q {
					if m.From == p || m.From == q {
						communicated = true
					}
					d.enqueue(m, 1)
					continue
				}
				// Fail every other process contacted (S1 members; S2 are
				// already dead). Messages to the dead are dropped.
				if !inS2[m.To] && d.alive[m.To] {
					d.crash(m.To)
				}
			}
		}
	}
	return communicated
}
