package lowerbound

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
)

// lazyProto is a synthetic message-frugal protocol used to exercise Case 2
// of the Theorem 1 strategy: each process sends a single message to one
// random target in its first local step and then stays silent. It is a
// (hopeless) gossip attempt whose processes are all non-promiscuous — the
// adversary must catch it with the isolation pair, not the message count.
type lazyProto struct{}

func (lazyProto) Name() string { return "lazy" }

func (lazyProto) NewNode(id sim.ProcID, p core.Params, r *rng.RNG) sim.Node {
	return &lazyNode{
		Tracker: core.NewTracker(p.N, id, core.NoValue, false),
		id:      id,
		n:       p.N,
		r:       r,
	}
}

func (lazyProto) Evaluator(p core.Params) sim.Evaluator {
	return core.FullGossipEvaluator{Params: p.WithDefaults()}
}

type lazyNode struct {
	core.Tracker
	id   sim.ProcID
	n    int
	sent bool
	r    *rng.RNG
}

func (l *lazyNode) ID() sim.ProcID { return l.id }

func (l *lazyNode) Step(now sim.Time, inbox []sim.Message, out *sim.Outbox) {
	for _, m := range inbox {
		if pl, ok := m.Payload.(*core.GossipPayload); ok {
			l.Absorb(pl.Rumors, now)
		}
	}
	if !l.sent {
		l.sent = true
		out.Send(sim.ProcID(l.r.Intn(l.n)), &core.GossipPayload{Rumors: l.Rumors().Snapshot()})
	}
}

func (l *lazyNode) Quiescent() bool { return l.sent }

func (l *lazyNode) CloneNode() sim.Node {
	return &lazyNode{
		Tracker: l.CloneTracker(),
		id:      l.id,
		n:       l.n,
		sent:    l.sent,
		r:       l.r.Clone(),
	}
}

func (l *lazyNode) Reseed(r *rng.RNG) { l.r = r }

func TestTheorem1AgainstEARS(t *testing.T) {
	// ears keeps gossiping while obligations are open, so every S2 process
	// is promiscuous in isolation: the adversary forces Ω(f²) messages.
	cfg := Config{N: 128, F: 32, Seed: 1, Trials: 8}
	rep, err := Run(core.EARS{}, core.Params{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Satisfied() {
		t.Fatalf("dichotomy not witnessed: %s", rep)
	}
	if rep.Case == CaseMessages && rep.ForcedMessages < rep.MessageTarget {
		t.Fatalf("case 1 fired but forced messages %d below target %d",
			rep.ForcedMessages, rep.MessageTarget)
	}
	t.Logf("ears: %s", rep)
}

func TestTheorem1AgainstTrivial(t *testing.T) {
	// Trivial floods n−1 messages in the first step: archetypal
	// promiscuity. Expect the message case with ~|S2|·(n−1) messages.
	cfg := Config{N: 128, F: 32, Seed: 2, Trials: 4}
	rep, err := Run(core.Trivial{}, core.Params{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Case != CaseMessages && rep.Case != CaseSlowStart {
		t.Fatalf("expected message or slow-start case for trivial, got %s", rep)
	}
	if !rep.Satisfied() {
		t.Fatalf("dichotomy not witnessed: %s", rep)
	}
	t.Logf("trivial: %s", rep)
}

func TestTheorem1AgainstSEARS(t *testing.T) {
	cfg := Config{N: 128, F: 32, Seed: 3, Trials: 4}
	rep, err := Run(core.SEARS{}, core.Params{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Satisfied() {
		t.Fatalf("dichotomy not witnessed: %s", rep)
	}
	t.Logf("sears: %s", rep)
}

func TestTheorem1AgainstTEARS(t *testing.T) {
	cfg := Config{N: 256, F: 64, Seed: 4, Trials: 4}
	rep, err := Run(core.TEARS{}, core.Params{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Satisfied() {
		t.Fatalf("dichotomy not witnessed: %s", rep)
	}
	t.Logf("tears: %s", rep)
}

func TestTheorem1Case2AgainstLazyProtocol(t *testing.T) {
	// The lazy protocol sends ≤ 1 message per process: non-promiscuous
	// everywhere, so the adversary must isolate a pair (Case 2) and the
	// pair must (with high probability over the single random targets)
	// never talk to each other, leaving gossip incomplete for Ω(f) time.
	cfg := Config{N: 256, F: 64, Seed: 5, Trials: 16}
	rep, err := Run(lazyProto{}, core.Params{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Case != CaseIsolation {
		t.Fatalf("expected isolation case for lazy protocol, got %s", rep)
	}
	if rep.Promiscuous != 0 {
		t.Fatalf("lazy protocol classified %d promiscuous processes", rep.Promiscuous)
	}
	if rep.PairCommunicated {
		t.Fatalf("isolated pair communicated (possible but p < 1/128 per direction): %s", rep)
	}
	if rep.ForcedTime < rep.TimeTarget {
		t.Fatalf("forced time %d below target %d", rep.ForcedTime, rep.TimeTarget)
	}
	// Crash budget respected: < f crashes total (proof: ≤ 3f/4).
	if rep.Crashes >= cfg.F {
		t.Fatalf("adversary used %d crashes, budget %d", rep.Crashes, cfg.F)
	}
	t.Logf("lazy: %s", rep)
}

func TestFEffectiveCappedAtQuarterN(t *testing.T) {
	cfg := Config{N: 64, F: 60, Seed: 6, Trials: 2}
	rep, err := Run(core.Trivial{}, core.Params{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FEffective != 16 {
		t.Fatalf("f capped to %d, want n/4 = 16", rep.FEffective)
	}
}

func TestTooSmallF(t *testing.T) {
	if _, err := Run(core.Trivial{}, core.Params{}, Config{N: 16, F: 2, Seed: 1}); err == nil {
		t.Fatal("tiny f accepted")
	}
}

func TestDichotomyAcrossSeeds(t *testing.T) {
	// The theorem is an expectation statement; verify the witness holds
	// for every seed in a batch (our executions are deterministic given
	// the seed, and the strategy's success probability is high).
	if testing.Short() {
		t.Skip("seed sweep in -short mode")
	}
	hold := 0
	const seeds = 8
	for seed := int64(0); seed < seeds; seed++ {
		rep, err := Run(core.EARS{}, core.Params{}, Config{N: 96, F: 24, Seed: seed, Trials: 4})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Satisfied() {
			hold++
		}
	}
	if hold < seeds-1 {
		t.Fatalf("dichotomy witnessed in only %d/%d seeds", hold, seeds)
	}
}
