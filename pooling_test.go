package repro

// Determinism tests for the pooled simulation kernel: snapshot pooling and
// the mailbox arena recycle memory on the hot path, and these tests pin
// the contract that recycling is invisible — a pooled run is bit-identical
// to an unpooled run, event for event, for every protocol and topology.

import (
	"fmt"
	"reflect"
	"testing"

	iadv "repro/internal/adversary"
	icore "repro/internal/core"
	isim "repro/internal/sim"
)

// eventTracer records every simulation event in order, so two runs can be
// compared at full fidelity (sends, deliveries, steps, crashes — not just
// the aggregate metrics).
type eventTracer struct {
	events []string
}

func (t *eventTracer) OnSend(m isim.Message) {
	t.events = append(t.events, fmt.Sprintf("send %d->%d @%d ready=%d", m.From, m.To, m.SentAt, m.ReadyAt))
}

func (t *eventTracer) OnDeliver(m isim.Message, at isim.Time) {
	t.events = append(t.events, fmt.Sprintf("recv %d->%d @%d", m.From, m.To, at))
}

func (t *eventTracer) OnStep(p isim.ProcID, at isim.Time) {
	t.events = append(t.events, fmt.Sprintf("step %d @%d", p, at))
}

func (t *eventTracer) OnCrash(p isim.ProcID, at isim.Time) {
	t.events = append(t.events, fmt.Sprintf("crash %d @%d", p, at))
}

// runTraced runs one gossip execution with an event tracer and returns the
// result plus the full event log.
func runTraced(t *testing.T, cfg GossipConfig, pool bool) (*GossipResult, []string) {
	t.Helper()
	proto, err := icore.ByName(cfg.Protocol)
	if err != nil {
		t.Fatal(err)
	}
	p := cfg.Tuning
	p.N, p.F = cfg.N, cfg.F
	p.NoPool = !pool
	nodes, err := icore.NewNodes(proto, p, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	simCfg := isim.Config{
		N: cfg.N, F: cfg.F, D: isim.Time(cfg.D), Delta: isim.Time(cfg.Delta), Seed: cfg.Seed,
	}
	adv, err := iadv.ByName(cfg.Adversary, simCfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := isim.NewWorld(simCfg, nodes, adv)
	if err != nil {
		t.Fatal(err)
	}
	tr := &eventTracer{}
	w.SetTracer(tr)
	res, err := w.Run(proto.Evaluator(p.WithDefaults()))
	if err != nil {
		t.Fatal(err)
	}
	out := &GossipResult{
		Completed: res.Completed,
		TimeSteps: int64(res.TimeComplexity),
		Messages:  res.Messages,
		Bytes:     res.Bytes,
		Crashes:   res.Crashes,
	}
	for q := 0; q < cfg.N; q++ {
		if h, ok := nodes[q].(icore.RumorHolder); ok {
			out.Rumors = append(out.Rumors, h.RumorSet().Elements())
		}
	}
	return out, tr.events
}

// TestPooledKernelMatchesUnpooled is the pooled-kernel determinism
// regression: for every asynchronous protocol, a pooled run must produce
// the same result AND the same event-for-event execution as an unpooled
// run. Any recycling bug that lets a released buffer leak into live state
// changes rumor sets or send counts and fails here.
func TestPooledKernelMatchesUnpooled(t *testing.T) {
	for _, proto := range []string{ProtoTrivial, ProtoEARS, ProtoSEARS, ProtoTEARS, "naive"} {
		for _, seed := range []int64{1, 7, 42} {
			cfg := GossipConfig{
				Protocol: proto, N: 48, F: 12, D: 2, Delta: 2,
				Adversary: AdversaryStandard, Seed: seed,
			}
			unpooled, evUnpooled := runTraced(t, cfg, false)
			pooled, evPooled := runTraced(t, cfg, true)
			if !reflect.DeepEqual(unpooled, pooled) {
				t.Fatalf("%s seed %d: pooled result differs:\nunpooled: %+v\npooled:   %+v",
					proto, seed, unpooled, pooled)
			}
			if len(evUnpooled) != len(evPooled) {
				t.Fatalf("%s seed %d: event count %d (unpooled) vs %d (pooled)",
					proto, seed, len(evUnpooled), len(evPooled))
			}
			for i := range evUnpooled {
				if evUnpooled[i] != evPooled[i] {
					t.Fatalf("%s seed %d: event %d differs: %q vs %q",
						proto, seed, i, evUnpooled[i], evPooled[i])
				}
			}
		}
	}
}

// TestPooledRunsAPIEquivalence checks the public entry point: RunGossip
// with an explicit shared pool (as the benchmarks use), with the default
// per-run pool, and with pooling disabled must all agree — including
// across repeated reuse of one pool, which exercises recycled buffers.
func TestPooledRunsAPIEquivalence(t *testing.T) {
	for _, proto := range []string{ProtoEARS, ProtoTEARS, ProtoSyncEpidemic} {
		pool := icore.NewPool(40)
		for _, seed := range []int64{3, 9} {
			base := GossipConfig{Protocol: proto, N: 40, F: 10, D: 2, Delta: 2, Seed: seed}

			defaultPool, err := RunGossip(base)
			if err != nil {
				t.Fatalf("%s: %v", proto, err)
			}

			noPool := base
			noPool.Tuning.NoPool = true
			unpooled, err := RunGossip(noPool)
			if err != nil {
				t.Fatalf("%s: %v", proto, err)
			}

			shared := base
			shared.Tuning.Pool = pool
			// Two sequential runs on the same pool: the second consumes
			// recycled storage from the first.
			if _, err := RunGossip(shared); err != nil {
				t.Fatalf("%s: %v", proto, err)
			}
			reused, err := RunGossip(shared)
			if err != nil {
				t.Fatalf("%s: %v", proto, err)
			}

			if !reflect.DeepEqual(defaultPool, unpooled) {
				t.Errorf("%s seed %d: default pool differs from unpooled", proto, seed)
			}
			if !reflect.DeepEqual(defaultPool, reused) {
				t.Errorf("%s seed %d: reused shared pool differs from fresh pool", proto, seed)
			}
		}
	}
}
