package repro

import (
	"context"
	"errors"
	"testing"
)

func TestRunGossipManyMatchesSerial(t *testing.T) {
	cfgs := make([]GossipConfig, 6)
	for i := range cfgs {
		cfgs[i] = GossipConfig{Protocol: ProtoEARS, N: 32, F: 8, Seed: int64(i)}
	}
	results, errs := RunGossipMany(Batch{Workers: 4}, cfgs)
	if len(results) != len(cfgs) || len(errs) != len(cfgs) {
		t.Fatalf("ragged batch: %d results, %d errs", len(results), len(errs))
	}
	for i, cfg := range cfgs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		serial, err := RunGossip(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if results[i].TimeSteps != serial.TimeSteps || results[i].Messages != serial.Messages {
			t.Fatalf("run %d: batch (%d steps, %d msgs) != serial (%d steps, %d msgs)",
				i, results[i].TimeSteps, results[i].Messages, serial.TimeSteps, serial.Messages)
		}
	}
}

func TestRunConsensusManyMatchesSerial(t *testing.T) {
	cfgs := make([]ConsensusConfig, 4)
	for i := range cfgs {
		cfgs[i] = ConsensusConfig{Transport: TransportTEARS, N: 16, F: 7, Seed: int64(i)}
	}
	results, errs := RunConsensusMany(Batch{Workers: 4}, cfgs)
	for i, cfg := range cfgs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		serial, err := RunConsensus(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if results[i].Decision != serial.Decision || results[i].Messages != serial.Messages {
			t.Fatalf("run %d diverges from serial", i)
		}
	}
}

func TestRunGossipManyPositionalErrors(t *testing.T) {
	cfgs := []GossipConfig{
		{Protocol: ProtoEARS, N: 16},
		{Protocol: "no-such-protocol", N: 16},
		{Protocol: ProtoEARS, N: 16, Seed: 2},
	}
	results, errs := RunGossipMany(Batch{Workers: 2}, cfgs)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("good configs errored: %v %v", errs[0], errs[2])
	}
	if errs[1] == nil {
		t.Fatal("bad config accepted")
	}
	if results[0] == nil || results[2] == nil {
		t.Fatal("good configs missing results")
	}
}

func TestRunGossipManyCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the batch starts: every run is skipped
	cfgs := make([]GossipConfig, 8)
	for i := range cfgs {
		cfgs[i] = GossipConfig{Protocol: ProtoEARS, N: 32, F: 8, Seed: int64(i)}
	}
	_, errs := RunGossipMany(Batch{Workers: 2, Context: ctx}, cfgs)
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("run %d: got %v, want context.Canceled", i, err)
		}
	}
}

func TestDeriveSeedExported(t *testing.T) {
	if DeriveSeed(0, "a", 0) == DeriveSeed(0, "b", 0) {
		t.Fatal("labels do not separate seed streams")
	}
	if DeriveSeed(0, "a", 1) != DeriveSeed(0, "a", 1) {
		t.Fatal("DeriveSeed not deterministic")
	}
}
