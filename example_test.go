package repro_test

import (
	"fmt"

	"repro"
)

// ExampleRunGossip spreads 64 rumors with the paper's epidemic protocol
// under an adversarial schedule. Runs are deterministic given the seed.
func ExampleRunGossip() {
	res, err := repro.RunGossip(repro.GossipConfig{
		Protocol:  repro.ProtoEARS,
		N:         64,
		F:         16,
		D:         2,
		Delta:     2,
		Adversary: repro.AdversaryStandard,
		Seed:      42,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("completed:", res.Completed)
	fmt.Println("everyone heard everyone:", len(res.Rumors[0]) == 64-res.Crashes || len(res.Rumors[0]) == 64)
	// Output:
	// completed: true
	// everyone heard everyone: true
}

// ExampleRunConsensus reaches binary agreement with CR-tears — the
// paper's constant-time, subquadratic-message consensus — on a unanimous
// proposal (validity forces the decision).
func ExampleRunConsensus() {
	inputs := make([]uint8, 32)
	for i := range inputs {
		inputs[i] = 1
	}
	res, err := repro.RunConsensus(repro.ConsensusConfig{
		Transport: repro.TransportTEARS,
		N:         32,
		F:         15,
		Inputs:    inputs,
		Seed:      7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("decision:", res.Decision)
	// Output:
	// decision: 1
}

// ExampleRunLowerBound runs the Theorem 1 adaptive adversary against the
// trivial protocol: flooding is promiscuous, so the adversary extracts
// Ω(f²) messages (Case 1 of the proof).
func ExampleRunLowerBound() {
	rep, err := repro.RunLowerBound(repro.LowerBoundConfig{
		Protocol: repro.ProtoTrivial,
		N:        128,
		F:        32,
		Seed:     1,
		Trials:   4,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("case:", rep.Case)
	fmt.Println("dichotomy witnessed:", rep.Satisfied())
	// Output:
	// case: messages
	// dichotomy witnessed: true
}
