package repro_test

import (
	"context"
	"fmt"

	"repro"
)

// ExampleRun spreads 64 rumors with the paper's epidemic protocol under an
// adversarial schedule. Runs are deterministic given the seed — and
// identical for every WithShards value, so large runs can fan out across
// cores without changing a single event.
func ExampleRun() {
	res, err := repro.Run(context.Background(), repro.GossipSpec{
		Protocol:  repro.ProtoEARS,
		N:         64,
		F:         16,
		D:         2,
		Delta:     2,
		Adversary: repro.AdversaryStandard,
		Seed:      42,
	}, repro.WithShards(4))
	if err != nil {
		panic(err)
	}
	g := res.Gossip
	fmt.Println("completed:", g.Completed)
	fmt.Println("everyone heard everyone:", len(g.Rumors[0]) == 64-g.Crashes || len(g.Rumors[0]) == 64)
	// Output:
	// completed: true
	// everyone heard everyone: true
}

// ExampleRun_consensus reaches binary agreement with CR-tears — the
// paper's constant-time, subquadratic-message consensus — on a unanimous
// proposal (validity forces the decision).
func ExampleRun_consensus() {
	inputs := make([]uint8, 32)
	for i := range inputs {
		inputs[i] = 1
	}
	res, err := repro.Run(context.Background(), repro.ConsensusSpec{
		Transport: repro.TransportTEARS,
		N:         32,
		F:         15,
		Inputs:    inputs,
		Seed:      7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("decision:", res.Consensus.Decision)
	// Output:
	// decision: 1
}

// ExampleRun_lowerBound runs the Theorem 1 adaptive adversary against the
// trivial protocol: flooding is promiscuous, so the adversary extracts
// Ω(f²) messages (Case 1 of the proof).
func ExampleRun_lowerBound() {
	res, err := repro.Run(context.Background(), repro.LowerBoundSpec{
		Protocol: repro.ProtoTrivial,
		N:        128,
		F:        32,
		Seed:     1,
		Trials:   4,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("case:", res.LowerBound.Case)
	fmt.Println("dichotomy witnessed:", res.LowerBound.Satisfied())
	// Output:
	// case: messages
	// dichotomy witnessed: true
}

// ExampleRunMany fans a seed sweep across a worker pool; results are
// positional and bit-identical to a serial loop.
func ExampleRunMany() {
	specs := make([]repro.GossipSpec, 4)
	for i := range specs {
		specs[i] = repro.GossipSpec{Protocol: repro.ProtoTEARS, N: 48, Seed: int64(i)}
	}
	results, errs := repro.RunMany(context.Background(), specs, repro.WithWorkers(2))
	for i := range results {
		if errs[i] != nil {
			panic(errs[i])
		}
		fmt.Printf("seed %d completed: %v\n", i, results[i].Gossip.Completed)
	}
	// Output:
	// seed 0 completed: true
	// seed 1 completed: true
	// seed 2 completed: true
	// seed 3 completed: true
}
