package repro

// The benchmark suite regenerates every table and figure of the paper's
// evaluation (run `go test -bench=. -benchmem`):
//
//	BenchmarkTable1*   — Table 1 rows (gossip: time / message complexity)
//	BenchmarkTable2*   — Table 2 rows (consensus via each get-core)
//	BenchmarkFigure1*  — Theorem 1 / Figure 1 adaptive lower bound
//	BenchmarkCorollary2* — cost-of-asynchrony ratios
//	BenchmarkTheorem12*  — tears' d-independence of message complexity
//	BenchmarkAblation* — DESIGN.md §6 design-choice sweeps
//
// Every benchmark reports the two quantities the paper bounds as custom
// metrics: steps/run (time complexity) and msgs/run (message complexity).
// Wall-clock ns/op measures the simulator, not the protocol, and is
// reported only for completeness. `cmd/tables` renders the same data as
// side-by-side tables against the paper's claims.

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/experiments"
	"repro/internal/lowerbound"

	icore "repro/internal/core"
	irng "repro/internal/rng"
	irunner "repro/internal/runner"
	isim "repro/internal/sim"
)

// benchGossip runs one gossip spec b.N times over spec-derived seeds:
// the seed stream is a function of the full spec label (not just the loop
// index), so distinct benchmarks never replay each other's randomness.
//
// Allocation accounting: every iteration shares one snapshot pool (safe —
// the loop is strictly sequential) and one untimed warm-up run fills it
// before the timer starts, so allocs/op reflects the simulator's steady
// state rather than first-run pool warm-up. Seeds and results are
// unaffected: pooling consumes no randomness and runs are bit-identical
// with or without it (see TestPooledKernelMatchesUnpooled).
func benchGossip(b *testing.B, proto string, n, f, d, delta int, adversary string) {
	b.Helper()
	label := fmt.Sprintf("gossip/%s/n=%d/f=%d/d=%d/delta=%d/%s", proto, n, f, d, delta, adversary)
	pool := icore.NewPool(n)
	cfg := func(i int) GossipConfig {
		c := GossipConfig{
			Protocol: proto, N: n, F: f, D: d, Delta: delta,
			Adversary: adversary, Seed: irunner.DeriveSeed(0, label, int64(i)),
		}
		c.Tuning.Pool = pool
		return c
	}
	if _, err := RunGossip(cfg(0)); err != nil { // warm-up, untimed
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var steps, msgs float64
	for i := 0; i < b.N; i++ {
		res, err := RunGossip(cfg(i))
		if err != nil {
			b.Fatal(err)
		}
		steps += float64(res.TimeSteps)
		msgs += float64(res.Messages)
	}
	b.ReportMetric(steps/float64(b.N), "steps/run")
	b.ReportMetric(msgs/float64(b.N), "msgs/run")
}

// benchConsensus runs one consensus spec b.N times over spec-derived seeds.
// Consensus runs are unpooled (transports buffer payloads across steps —
// see internal/consensus), so there is no pool to share; the warm-up run
// still primes the allocator so allocs/op is steady-state.
func benchConsensus(b *testing.B, transport string, n, f, d, delta int) {
	b.Helper()
	label := fmt.Sprintf("consensus/%s/n=%d/f=%d/d=%d/delta=%d", transport, n, f, d, delta)
	cfg := func(i int) ConsensusConfig {
		return ConsensusConfig{
			Transport: transport, N: n, F: f, D: d, Delta: delta,
			Seed: irunner.DeriveSeed(0, label, int64(i)),
		}
	}
	if _, err := RunConsensus(cfg(0)); err != nil { // warm-up, untimed
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var steps, msgs float64
	for i := 0; i < b.N; i++ {
		res, err := RunConsensus(cfg(i))
		if err != nil {
			b.Fatal(err)
		}
		steps += float64(res.TimeSteps)
		msgs += float64(res.Messages)
	}
	b.ReportMetric(steps/float64(b.N), "steps/run")
	b.ReportMetric(msgs/float64(b.N), "msgs/run")
}

// table1Sizes is the n sweep used by the Table 1 benchmarks (f = n/4
// except tears, which runs at its design point f just under n/2).
var table1Sizes = []int{64, 128, 256}

// BenchmarkTable1Trivial reproduces Table 1 row "Trivial": O(d+δ) time,
// Θ(n²) messages.
func BenchmarkTable1Trivial(b *testing.B) {
	for _, n := range table1Sizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchGossip(b, ProtoTrivial, n, n/4, 2, 2, AdversaryStandard)
		})
	}
}

// BenchmarkTable1SyncCK reproduces Table 1 row "CK [9]" via the
// deterministic synchronous substitute: polylog time, n·polylog messages,
// d = δ = 1 known a priori.
func BenchmarkTable1SyncCK(b *testing.B) {
	for _, n := range table1Sizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchGossip(b, ProtoSyncDeterministic, n, n/4, 1, 1, AdversaryStandard)
		})
	}
}

// BenchmarkTable1EARS reproduces Table 1 row "ears" (Theorem 6):
// O(n/(n−f)·log²n·(d+δ)) time, O(n·log³n·(d+δ)) messages.
func BenchmarkTable1EARS(b *testing.B) {
	for _, n := range table1Sizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchGossip(b, ProtoEARS, n, n/4, 2, 2, AdversaryStandard)
		})
	}
}

// BenchmarkTable1SEARS reproduces Table 1 row "sears" (Theorem 7):
// constant time w.r.t. n, subquadratic messages (ε = 1/2).
func BenchmarkTable1SEARS(b *testing.B) {
	for _, n := range table1Sizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchGossip(b, ProtoSEARS, n, n/4, 2, 2, AdversaryStandard)
		})
	}
}

// BenchmarkTable1TEARS reproduces Table 1 row "tears" (Theorem 12):
// O(d+δ) time, O(n^{7/4}·log²n) messages, majority gossip, f < n/2.
func BenchmarkTable1TEARS(b *testing.B) {
	for _, n := range table1Sizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchGossip(b, ProtoTEARS, n, (n-1)/2, 2, 2, AdversaryStandard)
		})
	}
}

// table2Sizes is the n sweep for the consensus benchmarks (f maximal
// minority).
var table2Sizes = []int{32, 64, 128}

// BenchmarkTable2CRBaseline reproduces Table 2 row "Canetti-Rabin":
// O(d+δ) time, O(n²) messages.
func BenchmarkTable2CRBaseline(b *testing.B) {
	for _, n := range table2Sizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchConsensus(b, TransportDirect, n, (n-1)/2, 2, 2)
		})
	}
}

// BenchmarkTable2CREARS reproduces Table 2 row "CR-ears":
// O(log²n·(d+δ)) time, O(n·log³n·(d+δ)) messages.
func BenchmarkTable2CREARS(b *testing.B) {
	for _, n := range table2Sizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchConsensus(b, TransportEARS, n, (n-1)/2, 2, 2)
		})
	}
}

// BenchmarkTable2CRSEARS reproduces Table 2 row "CR-sears":
// O(1/ε·(d+δ)) time, O(n^{1+ε}·log n·(d+δ)) messages.
func BenchmarkTable2CRSEARS(b *testing.B) {
	for _, n := range table2Sizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchConsensus(b, TransportSEARS, n, (n-1)/2, 2, 2)
		})
	}
}

// BenchmarkTable2CRTEARS reproduces Table 2 row "CR-tears" — the paper's
// headline: O(d+δ) time with strictly subquadratic messages.
func BenchmarkTable2CRTEARS(b *testing.B) {
	for _, n := range table2Sizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchConsensus(b, TransportTEARS, n, (n-1)/2, 2, 2)
		})
	}
}

// BenchmarkFigure1LowerBound reproduces the Theorem 1 / Figure 1
// construction: the adaptive adversary forces Ω(n+f²) messages or
// Ω(f(d+δ)) time. Reported metrics are from the constructed execution.
func BenchmarkFigure1LowerBound(b *testing.B) {
	for _, proto := range []string{ProtoTrivial, ProtoEARS, ProtoSEARS, ProtoTEARS} {
		b.Run(proto, func(b *testing.B) {
			var msgs, forced float64
			witnessed := 0
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := RunLowerBound(LowerBoundConfig{
					Protocol: proto, N: 256, F: 64, Seed: int64(i), Trials: 8,
				})
				if err != nil {
					b.Fatal(err)
				}
				msgs += float64(rep.TotalMessages)
				forced += float64(rep.ForcedTime)
				if rep.Satisfied() {
					witnessed++
				}
			}
			b.ReportMetric(msgs/float64(b.N), "msgs/run")
			b.ReportMetric(forced/float64(b.N), "steps/run")
			b.ReportMetric(float64(witnessed)/float64(b.N), "witnessed")
		})
	}
}

// BenchmarkFigure1Case2Isolation exercises the proof's Case 2 against a
// deliberately message-frugal protocol (every process non-promiscuous), so
// the adversary must isolate a pair and force Ω(f(d+δ)) time.
func BenchmarkFigure1Case2Isolation(b *testing.B) {
	proto := frugalProto{}
	var forced float64
	isolations := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := lowerbound.Run(proto, icore.Params{}, lowerbound.Config{
			N: 256, F: 64, Seed: int64(i), Trials: 16,
		})
		if err != nil {
			b.Fatal(err)
		}
		forced += float64(rep.ForcedTime)
		if rep.Case == lowerbound.CaseIsolation {
			isolations++
		}
	}
	b.ReportMetric(forced/float64(b.N), "steps/run")
	b.ReportMetric(float64(isolations)/float64(b.N), "isolation-rate")
}

// BenchmarkCorollary2CostOfAsynchrony measures the Corollary 2 ratios:
// asynchronous algorithms vs the synchronous optimum at d = δ = 1.
func BenchmarkCorollary2CostOfAsynchrony(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.CostOfAsynchrony(experiments.Env{}, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range res.Rows {
				b.ReportMetric(row.TimeRatio, row.Proto+"-time-ratio")
				b.ReportMetric(row.MsgRatio, row.Proto+"-msg-ratio")
			}
		}
	}
}

// BenchmarkTheorem12DIndependence contrasts message complexity at d=1 vs
// d=16 for ears (linear in d) and tears (d-independent) — the structural
// content of Theorem 12.
func BenchmarkTheorem12DIndependence(b *testing.B) {
	for _, proto := range []string{ProtoEARS, ProtoTEARS} {
		for _, d := range []int{1, 16} {
			b.Run(fmt.Sprintf("%s/d=%d", proto, d), func(b *testing.B) {
				benchGossip(b, proto, 128, 32, d, 1, AdversaryMaxDelay)
			})
		}
	}
}

// BenchmarkTheorem6SurvivorFactor sweeps f for ears under the crash storm:
// completion time must track n/(n−f) (Theorem 6's epoch factor).
func BenchmarkTheorem6SurvivorFactor(b *testing.B) {
	n := 128
	for _, f := range []int{0, n / 2, 7 * n / 8} {
		b.Run(fmt.Sprintf("f=%d", f), func(b *testing.B) {
			benchGossip(b, ProtoEARS, n, f, 2, 2, AdversaryCrashStorm)
		})
	}
}

// BenchmarkCrossoverEarsVsTrivial measures the message counts around the
// ears/trivial crossover point.
func BenchmarkCrossoverEarsVsTrivial(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		for _, proto := range []string{ProtoTrivial, ProtoEARS} {
			b.Run(fmt.Sprintf("%s/n=%d", proto, n), func(b *testing.B) {
				benchGossip(b, proto, n, n/4, 2, 2, AdversaryStandard)
			})
		}
	}
}

// BenchmarkAblationEarsShutdown sweeps the ears shut-down constant.
func BenchmarkAblationEarsShutdown(b *testing.B) {
	for _, c := range []float64{0.5, 2, 6, 12} {
		b.Run(fmt.Sprintf("c=%v", c), func(b *testing.B) {
			var steps, msgs float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := GossipConfig{
					Protocol: ProtoEARS, N: 128, F: 32, D: 2, Delta: 2,
					Seed: irunner.DeriveSeed(0, fmt.Sprintf("ablation-shutdown/c=%v", c), int64(i)),
				}
				cfg.Tuning.ShutdownC = c
				res, err := RunGossip(cfg)
				if err != nil {
					b.Fatal(err)
				}
				steps += float64(res.TimeSteps)
				msgs += float64(res.Messages)
			}
			b.ReportMetric(steps/float64(b.N), "steps/run")
			b.ReportMetric(msgs/float64(b.N), "msgs/run")
		})
	}
}

// BenchmarkAblationSearsEpsilon sweeps sears' ε (Theorem 7's 1/ε vs n^ε
// trade-off).
func BenchmarkAblationSearsEpsilon(b *testing.B) {
	for _, eps := range []float64{0.25, 0.5, 0.75} {
		b.Run(fmt.Sprintf("eps=%v", eps), func(b *testing.B) {
			var steps, msgs float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := GossipConfig{
					Protocol: ProtoSEARS, N: 128, F: 32, D: 2, Delta: 2,
					Seed: irunner.DeriveSeed(0, fmt.Sprintf("ablation-epsilon/eps=%v", eps), int64(i)),
				}
				cfg.Tuning.Epsilon = eps
				res, err := RunGossip(cfg)
				if err != nil {
					b.Fatal(err)
				}
				steps += float64(res.TimeSteps)
				msgs += float64(res.Messages)
			}
			b.ReportMetric(steps/float64(b.N), "steps/run")
			b.ReportMetric(msgs/float64(b.N), "msgs/run")
		})
	}
}

// BenchmarkAblationCoin compares the common coin against Ben-Or local
// coins on the direct transport. The local coin is *expected* to blow up
// occasionally: when crashes leave exactly ⌊n/2⌋+1 survivors, a decision
// needs all survivors' independent coins to agree — the exponential
// worst case the Canetti–Rabin shared coin exists to eliminate. Runs that
// exhaust the step budget are therefore reported as a timeout rate, not a
// failure.
func BenchmarkAblationCoin(b *testing.B) {
	for _, local := range []bool{false, true} {
		name := "common"
		if local {
			name = "local"
		}
		b.Run(name, func(b *testing.B) {
			var steps, rounds float64
			decided := 0
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := RunConsensus(ConsensusConfig{
					Transport: TransportDirect, N: 32, F: 15, D: 2, Delta: 2,
					Seed: int64(i), LocalCoin: local,
					MaxSteps: 20000,
				})
				switch {
				case err == nil:
					decided++
					steps += float64(res.TimeSteps)
					rounds += float64(res.MaxRounds)
				case errors.Is(err, isim.ErrTimeout):
					// Ben-Or pathology; counted below.
				default:
					b.Fatal(err)
				}
			}
			if decided > 0 {
				b.ReportMetric(steps/float64(decided), "steps/run")
				b.ReportMetric(rounds/float64(decided), "rounds/run")
			}
			b.ReportMetric(1-float64(decided)/float64(b.N), "timeout-rate")
		})
	}
}

// BenchmarkAblationNaiveEpidemic contrasts the §1 strawman (fixed
// repetition count, no informed list) against ears under a scheduler that
// starves one process until everyone else has finished: the naive
// protocol quiesces with the gathering property violated, ears reawakens
// and completes. The reported metric is the completion rate — the reason
// the informed list exists.
func BenchmarkAblationNaiveEpidemic(b *testing.B) {
	const (
		n        = 64
		switchAt = 3000
	)
	for _, protoName := range []string{"naive", ProtoEARS} {
		proto, err := icore.ByName(protoName)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(protoName, func(b *testing.B) {
			completed := 0
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := isim.Config{N: n, F: 0, D: 1, Delta: 1, Seed: int64(i), MaxSteps: 4 * switchAt}
				p := icore.Params{N: n, F: 0}
				nodes, err := icore.NewNodes(proto, p, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				adv := starvationAdversary{victim: 0, switchAt: switchAt, n: n}
				w, err := isim.NewWorld(cfg, nodes, adv)
				if err != nil {
					b.Fatal(err)
				}
				if res, err := w.Run(proto.Evaluator(p)); err == nil && res.Completed {
					completed++
				}
			}
			b.ReportMetric(float64(completed)/float64(b.N), "completion-rate")
		})
	}
}

// starvationAdversary freezes one process until switchAt, then schedules
// everyone; delay 1, no crashes.
type starvationAdversary struct {
	victim   isim.ProcID
	switchAt isim.Time
	n        int
}

func (a starvationAdversary) Schedule(t isim.Time, _ isim.View, buf []isim.ProcID) []isim.ProcID {
	for i := 0; i < a.n; i++ {
		if isim.ProcID(i) == a.victim && t < a.switchAt {
			continue
		}
		buf = append(buf, isim.ProcID(i))
	}
	return buf
}

func (starvationAdversary) Delay(isim.Time, isim.ProcID, isim.ProcID) isim.Time { return 1 }

func (starvationAdversary) Crashes(_ isim.Time, _ isim.View, buf []isim.ProcID) []isim.ProcID {
	return buf
}

// BenchmarkBitComplexity reports the byte-complexity extension (paper §7
// future work): approximate payload bytes moved per run, per protocol.
func BenchmarkBitComplexity(b *testing.B) {
	for _, proto := range []string{ProtoTrivial, ProtoEARS, ProtoSEARS, ProtoTEARS} {
		b.Run(proto, func(b *testing.B) {
			var bytes, msgs float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := RunGossip(GossipConfig{
					Protocol: proto, N: 128, F: 32, D: 2, Delta: 2,
					Adversary: AdversaryStandard, Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				bytes += float64(res.Bytes)
				msgs += float64(res.Messages)
			}
			b.ReportMetric(bytes/float64(b.N), "bytes/run")
			if msgs > 0 {
				b.ReportMetric(bytes/msgs, "bytes/msg")
			}
		})
	}
}

// frugalProto is the message-frugal protocol used by the Case 2 benchmark:
// one message per process, ever — every process is non-promiscuous, so the
// Theorem 1 adversary must take the isolation branch.
type frugalProto struct{}

var _ icore.Protocol = frugalProto{}

func (frugalProto) Name() string { return "frugal" }

func (frugalProto) NewNode(id isim.ProcID, p icore.Params, r *irng.RNG) isim.Node {
	return &frugalNode{
		Tracker: icore.NewTracker(p.N, id, icore.NoValue, false),
		id:      id,
		n:       p.N,
		r:       r,
	}
}

func (frugalProto) Evaluator(p icore.Params) isim.Evaluator {
	return icore.FullGossipEvaluator{Params: p.WithDefaults()}
}

type frugalNode struct {
	icore.Tracker
	id   isim.ProcID
	n    int
	sent bool
	r    *irng.RNG
}

func (f *frugalNode) ID() isim.ProcID { return f.id }

func (f *frugalNode) Step(now isim.Time, inbox []isim.Message, out *isim.Outbox) {
	for _, m := range inbox {
		if pl, ok := m.Payload.(*icore.GossipPayload); ok {
			f.Absorb(pl.Rumors, now)
		}
	}
	if !f.sent {
		f.sent = true
		out.Send(isim.ProcID(f.r.Intn(f.n)), &icore.GossipPayload{Rumors: f.Rumors().Snapshot()})
	}
}

func (f *frugalNode) Quiescent() bool { return f.sent }

func (f *frugalNode) CloneNode() isim.Node {
	return &frugalNode{Tracker: f.CloneTracker(), id: f.id, n: f.n, sent: f.sent, r: f.r.Clone()}
}

func (f *frugalNode) Reseed(r *irng.RNG) { f.r = r }
