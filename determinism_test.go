package repro

import (
	"reflect"
	"testing"
)

// TestRunGossipDeterministic: the same GossipConfig (same Seed) yields an
// identical GossipResult across invocations — guarding the RNG plumbing
// (node streams, adversary streams, topology generation) against
// accidental nondeterminism such as map-iteration ordering.
func TestRunGossipDeterministic(t *testing.T) {
	configs := []GossipConfig{
		{Protocol: ProtoEARS, N: 48, F: 12, D: 2, Delta: 2, Seed: 11},
		{Protocol: ProtoSEARS, N: 48, F: 12, Seed: 11},
		{Protocol: ProtoTEARS, N: 64, F: 16, Seed: 11},
		{Protocol: ProtoEARS, N: 48, Seed: 11, Topology: TopoErdosRenyi},
		{Protocol: ProtoEARS, N: 48, Seed: 11, Topology: TopoBarabasiAlbert},
		{Protocol: ProtoTEARS, N: 48, Seed: 11, Topology: TopoRandomRegular},
	}
	for _, cfg := range configs {
		a, errA := RunGossip(cfg)
		b, errB := RunGossip(cfg)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s/%s: error mismatch: %v vs %v", cfg.Protocol, cfg.Topology, errA, errB)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s on %q: results differ across identical runs:\n%+v\n%+v",
				cfg.Protocol, cfg.Topology, a, b)
		}
	}
}

// TestRunConsensusDeterministic: same for RunConsensus.
func TestRunConsensusDeterministic(t *testing.T) {
	configs := []ConsensusConfig{
		{Transport: TransportTEARS, N: 32, F: 7, Seed: 13},
		{Transport: TransportDirect, N: 32, F: 7, Seed: 13},
		{Transport: TransportEARS, N: 32, F: 7, Seed: 13, Topology: TopoErdosRenyi},
	}
	for _, cfg := range configs {
		a, errA := RunConsensus(cfg)
		b, errB := RunConsensus(cfg)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("CR-%s/%s: error mismatch: %v vs %v", cfg.Transport, cfg.Topology, errA, errB)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("CR-%s on %q: results differ across identical runs:\n%+v\n%+v",
				cfg.Transport, cfg.Topology, a, b)
		}
	}
}
