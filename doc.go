// Package repro is a from-scratch Go reproduction of "On the Complexity of
// Asynchronous Gossip" (Georgiou, Gilbert, Guerraoui, Kowalski — PODC
// 2008): randomized gossip and consensus protocols for asynchronous,
// crash-prone, message-passing systems, together with the discrete-time
// adversarial simulator the paper's complexity measures are defined over.
//
// # The Run API
//
// Every simulation goes through one entry point:
//
//	out, err := repro.Run(ctx, spec, opts...)
//
// where spec is one of four typed specs and out is a RunResult with the
// matching field set:
//
//   - GossipSpec simulates one of the paper's gossip protocols — ears
//     (epidemic, §3), sears (spamming, §4), tears (two-hop majority
//     gossip, §5) — or a baseline (trivial all-to-all, synchronous
//     epidemics) under a configurable adversary, and reports the paper's
//     two complexity measures: time steps and point-to-point messages.
//     Two further protocol families ride the same spec: the single-rumor
//     spreading family (ProtoPush, ProtoPull, ProtoPushPull — an
//     informed bit and a send budget per process, the O(1)-state
//     workload the asynchronous push-pull literature analyzes), and
//     sum-weight averaging (ProtoAverage — push-sum over (sum, weight)
//     pairs until every estimate is within GossipConfig.AvgEpsilon of
//     the true mean; crash-free by construction, since crashes destroy
//     mass).
//
//   - ConsensusSpec simulates randomized binary consensus in the
//     Canetti–Rabin framework (§6) with get-core realized by all-to-all
//     communication (the Θ(n²) baseline) or by majority gossip (CR-ears,
//     CR-sears, CR-tears — the latter being the paper's headline: constant
//     time with strictly subquadratic message complexity).
//
//   - LowerBoundSpec executes the adaptive adversary from Theorem 1 (§2)
//     against a chosen protocol, witnessing the paper's dichotomy: either
//     Ω(n+f²) messages or Ω(f·(d+δ)) time.
//
//   - FuzzSpec drives the deterministic scenario-fuzzing engine
//     (internal/scenario, also exposed as cmd/fuzz): from one master seed
//     it derives an unbounded stream of random scenarios — protocol, n, f,
//     d, δ, a topology from the generated families, and an oblivious
//     adversary composed from random schedules, delay policies and
//     explicit crash plans — executes each through the kernel, and checks
//     every run against an invariant-oracle catalog: crash budget ≤ f,
//     delay clamp ∈ [1, d], no post-crash activity, schedule-gap bounds,
//     completion promises re-verified from raw node state, validity,
//     paper-derived message/time envelopes, and sampled pooled ≡ unpooled
//     and sharded ≡ serial event-stream equivalence. A violated scenario
//     is shrunk to a minimized repro and returned as a replayable
//     ScenarioReport; `cmd/fuzz -repro` re-runs a report file exactly.
//     With `-corpus DIR` a session is coverage-guided: a persistent,
//     content-addressed corpus of previously interesting scenarios
//     (repro.fuzz.corpus/v1) replays as a regression pass, part of the
//     budget mutates corpus entries toward the complexity-envelope
//     boundaries instead of sampling fresh, and runs with novel coverage
//     features or top-decile envelope tightness are admitted back — the
//     whole campaign, evolved corpus included, a pure function of
//     (master seed, input corpus).
//
// Functional options tune how a run executes — never what it computes:
//
//   - WithShards(s) splits the run into s deterministic superstep shards
//     (see "Sharded execution" below); output is bit-identical for every
//     shard count.
//   - WithWorkers(w) caps the goroutines used by sharded phases, RunMany
//     batches and fuzz sessions.
//   - WithTracer(t) tees an extra event observer into the run.
//   - WithTelemetry(rec) attaches a telemetry.Recorder for streaming,
//     mergeable metrics.
//   - WithLean() keeps per-process bookkeeping O(1) for large-n runs (the
//     Θ(n²) Rumors matrix is not materialized; everything else in the
//     result is unchanged).
//
// For ensembles, RunMany fans a slice of specs across a worker pool with
// per-item results and errors positionally identical to a serial loop; the
// engine behind it — and behind every experiment sweep and the cmd/bench
// artifact — is internal/runner, whose contract is that parallel execution
// is bit-identical to serial. DeriveSeed exposes its seed policy for
// callers building their own sweeps.
//
// The pre-Run entry points (RunGossip, RunConsensus, RunLowerBound,
// RunFuzz, RunGossipMany, RunConsensusMany) remain as deprecated thin
// wrappers with zero behavior change; the API-equivalence test suite pins
// each wrapper bit-identical to its Run translation.
//
// Every run accepts a communication topology (GossipConfig.Topology,
// ConsensusConfig.Topology, the Topo* constants): the default is the
// paper's complete graph — reproducing the original model and its results
// exactly — while the generated families (ring, torus, random-regular,
// erdos-renyi, watts-strogatz, barabasi-albert) restrict every protocol to
// neighborhood communication over a seeded, connected, CSR-backed graph.
//
// # Sharded execution
//
// WithShards(s) partitions a single run's processes into s contiguous
// id-range shards and executes each time step as a superstep: shards drain
// inboxes and step their processes in parallel against a frozen snapshot,
// then a serial phase replays sends in canonical global order (restoring
// the exact shared-RNG delay draws, tracer callbacks and metric folds of
// the serial kernel), then shards enqueue routed messages in parallel.
// The contract is bit-identical equivalence: a sharded run produces the
// same result and the same event stream, event for event, as the serial
// kernel — pinned by golden digests, an equivalence test matrix, and a
// sharded ≡ serial fuzz oracle over random scenarios and shard counts.
// Sharding composes with snapshot pooling (each shard owns a pool
// partition) and with WithLean for memory-bounded large-n runs; the
// cmd/bench -xlarge tier runs both nightly, and the nightly -million
// tier pushes the combination to n = 10⁶ with push-pull — the O(1)
// per-process state makes a million processes an event-throughput
// problem rather than a memory problem.
//
// # Determinism contract
//
// A run is a pure function of its configuration and seed. Four layers
// uphold this, and every optimization must preserve it:
//
//   - The serial kernel (internal/sim) is single-goroutine per world, so
//     event order is total and reproducible.
//   - The sharded superstep engine replays all cross-shard effects in
//     canonical order on one goroutine, so any shard count reproduces the
//     serial event stream exactly.
//   - The worker pool (internal/runner) is bit-identical to serial
//     execution: results are index-addressed and aggregated in grid
//     order, never in completion order.
//   - Memory recycling (the snapshot pools and the mailbox arena behind
//     the hot path) consumes no randomness and touches no metric: pooled
//     and unpooled runs produce identical executions event for event,
//     which the determinism tests enforce. Pools are single-goroutine by
//     design — one per world, or one per shard in sharded runs — and
//     payloads are recycled only after the receiving process consumed them
//     (see the Releasable contract in internal/sim); custom tracers and
//     adversaries must therefore not retain message payloads beyond the
//     callback that delivered them.
//
// The committed BENCH_gossip.json baseline and `cmd/bench -compare` turn
// the contract into a CI gate: steps, messages and bytes must reproduce
// bit for bit against the baseline on every change.
//
// # Observability
//
// internal/telemetry instruments runs without perturbing them: streaming
// O(1)-per-event samplers (telemetry.Recorder — informed-count and
// in-flight curves, send-band and delivery-latency histograms, all exactly
// mergeable across runs and shards) and exporters (OpenMetrics text,
// Chrome trace-event JSON for Perfetto, NDJSON event logs) ride the same
// Tracer seam as custom tracers; attach one via WithTelemetry or
// WithTracer, or compose with sim.Tee. Everything is observation-only —
// digests, baselines and fuzz output are byte-identical with telemetry on
// or off — and with no tracer attached the kernel keeps its
// allocation-free fast path. cmd/bench -telemetry captures pprof profiles
// plus an instrumented sample run; cmd/fuzz streams progress, watches for
// stuck workers, and emits a repro.bench.fuzz/v3 artifact with per-oracle
// envelope-tightness percentiles and the coverage-guided campaign's
// corpus steering rates (-bench / -check).
//
// # Live cluster
//
// The protocols are genuine asynchronous message-passing algorithms, so
// beyond the simulator they run in two live shapes sharing the same
// sim.Node code: internal/live (one goroutine per process, channels as
// links, credit-counting termination) and internal/cluster — a real
// networked deployment where every node owns a loopback TCP listener and
// protocol payloads travel as versioned binary envelopes. cmd/cluster
// replays a scenario spec (a bare spec, a fuzz corpus entry, or a fuzz
// report) over such a cluster, one OS process per node by default or
// -inproc for CI; nodes join a registry control plane, discover peers
// via heartbeats, and the driver detects quiescence by distributed
// credit counting over heartbeat counters. Finished runs are judged by a
// live-adapted subset of the fuzzer's oracle catalog (crash budget,
// validity, completion, message/time envelopes with wall-clock slack,
// off-edge, post-crash silence, credit balance) and distilled into a
// schema-versioned repro.bench.live/v1 artifact with real
// delivery-latency percentiles; -metrics serves each node's telemetry as
// an OpenMetrics scrape endpoint. See docs/ARCHITECTURE.md for how the
// three execution shapes relate.
//
// Deeper extension points (custom protocols, adversaries, tracers,
// graphs) are exposed through type aliases into the internal packages;
// see Protocol, Adversary, Tracer and Graph.
package repro
